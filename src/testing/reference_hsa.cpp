#include "testing/reference_hsa.hpp"

#include <utility>

namespace rvaas::fuzz {

using hsa::HeaderSpace;
using hsa::Rewrite;
using hsa::Wildcard;

// Invariant: cubes_ holds only non-empty cubes (possibly overlapping,
// never merged — naivety is the point).

ReferenceHeaderSpace ReferenceHeaderSpace::all() {
  return ReferenceHeaderSpace(Wildcard::all());
}

ReferenceHeaderSpace::ReferenceHeaderSpace(const Wildcard& cube) {
  if (!cube.is_empty()) cubes_.push_back(cube);
}

ReferenceHeaderSpace ReferenceHeaderSpace::from(const HeaderSpace& hs) {
  ReferenceHeaderSpace out;
  for (const hsa::Cube& c : hs.cubes()) {
    // Eager flattening of base \ diffs, one diff at a time.
    std::vector<Wildcard> plain;
    if (!c.base.is_empty()) plain.push_back(c.base);
    for (const Wildcard& d : c.diffs) {
      std::vector<Wildcard> next;
      for (const Wildcard& p : plain) {
        for (Wildcard& piece : cube_subtract(p, d)) {
          if (!piece.is_empty()) next.push_back(std::move(piece));
        }
      }
      plain = std::move(next);
    }
    out.cubes_.insert(out.cubes_.end(), plain.begin(), plain.end());
  }
  return out;
}

bool ReferenceHeaderSpace::is_empty() const { return cubes_.empty(); }

bool ReferenceHeaderSpace::contains(const sdn::HeaderFields& h) const {
  for (const Wildcard& c : cubes_) {
    if (c.contains(h)) return true;
  }
  return false;
}

ReferenceHeaderSpace ReferenceHeaderSpace::intersect(const Wildcard& w) const {
  ReferenceHeaderSpace out;
  for (const Wildcard& c : cubes_) {
    Wildcard narrowed = c.intersect(w);
    if (!narrowed.is_empty()) out.cubes_.push_back(std::move(narrowed));
  }
  return out;
}

ReferenceHeaderSpace ReferenceHeaderSpace::subtract(const Wildcard& w) const {
  ReferenceHeaderSpace out;
  for (const Wildcard& c : cubes_) {
    for (Wildcard& piece : cube_subtract(c, w)) {
      if (!piece.is_empty()) out.cubes_.push_back(std::move(piece));
    }
  }
  return out;
}

ReferenceHeaderSpace ReferenceHeaderSpace::union_with(
    const ReferenceHeaderSpace& other) const {
  ReferenceHeaderSpace out = *this;
  out.cubes_.insert(out.cubes_.end(), other.cubes_.begin(),
                    other.cubes_.end());
  return out;
}

ReferenceHeaderSpace ReferenceHeaderSpace::rewrite(const Rewrite& rw) const {
  ReferenceHeaderSpace out;
  for (const Wildcard& c : cubes_) {
    Wildcard img = rw.apply(c);
    if (!img.is_empty()) out.cubes_.push_back(std::move(img));
  }
  return out;
}

std::optional<std::string> check_headerspace_vs_reference(
    const HeaderSpace& opt, const ReferenceHeaderSpace& ref, util::Rng& rng,
    std::size_t samples) {
  // Sample-based membership, both directions.
  for (std::size_t i = 0; i < samples; ++i) {
    if (const auto h = opt.sample(rng)) {
      if (!ref.contains(*h)) {
        return "optimized space contains a header the reference excludes "
               "(sampled from optimized cube list)";
      }
    }
    if (!ref.cubes().empty()) {
      const sdn::HeaderFields h = rng.pick(ref.cubes()).sample(rng);
      if (!opt.contains(h)) {
        return "reference space contains a header the optimized side "
               "excludes (sampled from reference cube list)";
      }
    }
  }

  // Exact containment both ways via eager set difference on plain cubes.
  const ReferenceHeaderSpace flat = ReferenceHeaderSpace::from(opt);
  ReferenceHeaderSpace opt_minus_ref = flat;
  for (const Wildcard& c : ref.cubes()) {
    opt_minus_ref = opt_minus_ref.subtract(c);
  }
  if (!opt_minus_ref.is_empty()) {
    return "optimized \\ reference is non-empty: " +
           opt_minus_ref.cubes().front().to_string();
  }
  ReferenceHeaderSpace ref_minus_opt = ref;
  for (const Wildcard& c : flat.cubes()) {
    ref_minus_opt = ref_minus_opt.subtract(c);
  }
  if (!ref_minus_opt.is_empty()) {
    return "reference \\ optimized is non-empty: " +
           ref_minus_opt.cubes().front().to_string();
  }
  return std::nullopt;
}

}  // namespace rvaas::fuzz
