#include "testing/shrink.hpp"

#include <algorithm>

namespace rvaas::fuzz {

std::optional<ShrinkResult> shrink(const Schedule& failing,
                                   std::size_t max_runs) {
  std::size_t runs = 0;
  const auto try_run = [&runs](const Schedule& s) {
    ++runs;
    return run_schedule(s).failure;
  };

  const auto original = try_run(failing);
  if (!original) return std::nullopt;

  // The failing prefix: steps after the tripping one never executed.
  Schedule best = failing;
  best.steps.resize(std::min(best.steps.size(), original->step_index + 1));
  FuzzFailure best_failure = *original;
  if (const auto confirmed = try_run(best)) {
    best_failure = *confirmed;
  } else {
    // Truncation should be failure-preserving by construction; if it is
    // not (an oracle accounting bug), shrink conservatively from the whole
    // schedule instead.
    best = failing;
  }

  // ddmin-style removal: larger chunks first, re-truncating to the failing
  // prefix after every successful removal.
  std::size_t chunk = std::max<std::size_t>(1, best.steps.size() / 2);
  while (runs < max_runs) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < best.steps.size() && best.steps.size() > 1 && runs < max_runs;
         /* advance inside */) {
      Schedule candidate = best;
      const std::size_t len = std::min(chunk, candidate.steps.size() - start);
      candidate.steps.erase(
          candidate.steps.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.steps.begin() + static_cast<std::ptrdiff_t>(start + len));
      if (const auto f = try_run(candidate)) {
        candidate.steps.resize(
            std::min(candidate.steps.size(), f->step_index + 1));
        best = std::move(candidate);
        best_failure = *f;
        removed_any = true;
        // Do not advance: new steps slid into `start`.
      } else {
        start += len;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // fixed point: 1-minimal
    } else {
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }

  return ShrinkResult{std::move(best), std::move(best_failure), runs};
}

}  // namespace rvaas::fuzz
