#pragma once
// Reference header-space implementation for the equivalence oracle: an
// eager, plain-cube-list model of the same set algebra src/hsa implements
// with lazy diffs, canonical merging, memoization and materialization
// bounds. Everything here is deliberately naive — subtraction happens
// immediately via cube_subtract, nothing is merged, nothing is cached — so
// a divergence between the two always points at the optimized side.
//
// Testing-only: linked into the testing layer and the fuzz/equivalence
// tests, never into the production engine.

#include <optional>
#include <string>
#include <vector>

#include "hsa/header_space.hpp"

namespace rvaas::fuzz {

/// Union of plain (diff-free) cubes, eagerly maintained.
class ReferenceHeaderSpace {
 public:
  ReferenceHeaderSpace() = default;
  static ReferenceHeaderSpace all();
  explicit ReferenceHeaderSpace(const hsa::Wildcard& cube);

  /// Imports an optimized space by resolving it to plain cubes.
  static ReferenceHeaderSpace from(const hsa::HeaderSpace& hs);

  bool is_empty() const;
  bool contains(const sdn::HeaderFields& h) const;

  ReferenceHeaderSpace intersect(const hsa::Wildcard& w) const;
  ReferenceHeaderSpace subtract(const hsa::Wildcard& w) const;
  ReferenceHeaderSpace union_with(const ReferenceHeaderSpace& other) const;
  ReferenceHeaderSpace rewrite(const hsa::Rewrite& rw) const;

  const std::vector<hsa::Wildcard>& cubes() const { return cubes_; }

 private:
  std::vector<hsa::Wildcard> cubes_;
};

/// Equivalence oracle: checks that `opt` and `ref` denote the same header
/// set. Sample-based membership both ways (`samples` draws from each side
/// must be members of the other), plus an exact emptiness cross-check of
/// opt \ ref and ref \ opt piece-by-piece. Returns a human-readable
/// divergence, nullopt when equivalent.
std::optional<std::string> check_headerspace_vs_reference(
    const hsa::HeaderSpace& opt, const ReferenceHeaderSpace& ref,
    util::Rng& rng, std::size_t samples);

}  // namespace rvaas::fuzz
