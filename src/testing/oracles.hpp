#pragma once
// Differential oracles for the adversarial scenario fuzzer. Each oracle
// compares two independent computations of the same truth and reports a
// human-readable divergence (nullopt = green):
//
//   (a) check_cached_vs_cold — the production engine with its warm L1
//       (CompiledModelCache) and L2 (ReachCache) tiers against a fresh cold
//       engine over the same snapshot: byte-identical replies, identical
//       dependency footprints and auth target lists, for all 7 query kinds.
//   (c) check_federation_vs_flat — a federated walk across two RVaaS
//       domains against a single flat engine over the merged topology with
//       both domains' tables replayed into one snapshot.
//
// Oracles (b) (monitor pushes vs cold one-shot queries) and (d) (detector
// verdicts vs AttackRecord ground truth) need the harness's live tracking
// state and live in fuzzer.cpp; the shared reply-normalization helper is
// here so tests compare the exact bytes the oracles compare.

#include <optional>
#include <string>

#include "rvaas/multiprovider.hpp"
#include "workload/scenario.hpp"

namespace rvaas::fuzz {

/// Serialized reply with the request id normalized away (a one-shot reply
/// carries the client's request id, a notification the subscription id; the
/// verdict-relevant content must be byte-identical).
util::Bytes normalized_reply_bytes(core::QueryReply reply);

/// Oracle (a). Evaluates all 7 query kinds from `client`'s access point
/// through the runtime's warm engine and through a fresh cold engine.
/// `path_peer` is the PathLength target; `constraint` scopes the probed
/// traffic (harness rotates between broad wildcard probes and narrow
/// exact-match probes — broad probes over attack-riddled snapshots are
/// cube-explosion territory and priced accordingly).
std::optional<std::string> check_cached_vs_cold(
    workload::ScenarioRuntime& runtime, sdn::HostId client,
    sdn::HostId path_peer, const sdn::Match& constraint);

/// Oracle (c) inputs: a federation of two domains (`start` owning
/// `ingress`), the merged wiring plan, and the two domains' live snapshots.
struct FederationOracleInput {
  const core::Federation* federation = nullptr;
  core::ProviderId start{};
  sdn::PortRef ingress;
  const sdn::Topology* flat_topo = nullptr;
  const core::SnapshotManager* snap_a = nullptr;
  const core::SnapshotManager* snap_b = nullptr;
  sdn::Match constraint;
  /// Must equal the domain engines' traversal depth: a budget asymmetry
  /// between the walk and the flat reference is itself a divergence.
  std::size_t max_depth = 64;
};

std::optional<std::string> check_federation_vs_flat(
    const FederationOracleInput& in);

}  // namespace rvaas::fuzz
