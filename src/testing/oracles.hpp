#pragma once
// Differential oracles for the adversarial scenario fuzzer. Each oracle
// compares two independent computations of the same truth and reports a
// human-readable divergence (nullopt = green):
//
//   (a) check_cached_vs_cold — the production engine with its warm L1
//       (CompiledModelCache) and L2 (ReachCache) tiers against a fresh cold
//       engine over the same snapshot: byte-identical replies, identical
//       dependency footprints and auth target lists, for all 7 query kinds.
//   (c) check_federation_vs_flat — a federated walk across two RVaaS
//       domains against a single flat engine over the merged topology with
//       both domains' tables replayed into one snapshot.
//   (f) check_fault_equivalence — under control-channel fault injection,
//       the verifier's live view against a ground-truth reference snapshot
//       rebuilt from every switch's actual tables: any verdict whose
//       footprint is outside the fault shadow and not degraded-marked must
//       be byte-identical to the reference (no fail-wrong); after a heal,
//       strict mode additionally demands all-Healthy channels, zero
//       staleness and full byte convergence (fail-stale ends).
//
// Oracles (b) (monitor pushes vs cold one-shot queries) and (d) (detector
// verdicts vs AttackRecord ground truth) need the harness's live tracking
// state and live in fuzzer.cpp; the shared reply-normalization helper is
// here so tests compare the exact bytes the oracles compare.

#include <optional>
#include <string>

#include "rvaas/multiprovider.hpp"
#include "workload/scenario.hpp"

namespace rvaas::fuzz {

/// Serialized reply with the request id normalized away (a one-shot reply
/// carries the client's request id, a notification the subscription id; the
/// verdict-relevant content must be byte-identical).
util::Bytes normalized_reply_bytes(core::QueryReply reply);

/// Oracle (a). Evaluates all 7 query kinds from `client`'s access point
/// through the runtime's warm engine and through a fresh cold engine.
/// `path_peer` is the PathLength target; `constraint` scopes the probed
/// traffic (harness rotates between broad wildcard probes and narrow
/// exact-match probes — broad probes over attack-riddled snapshots are
/// cube-explosion territory and priced accordingly).
std::optional<std::string> check_cached_vs_cold(
    workload::ScenarioRuntime& runtime, sdn::HostId client,
    sdn::HostId path_peer, const sdn::Match& constraint);

/// Oracle (c) inputs: a federation of two domains (`start` owning
/// `ingress`), the merged wiring plan, and the two domains' live snapshots.
struct FederationOracleInput {
  const core::Federation* federation = nullptr;
  core::ProviderId start{};
  sdn::PortRef ingress;
  const sdn::Topology* flat_topo = nullptr;
  const core::SnapshotManager* snap_a = nullptr;
  const core::SnapshotManager* snap_b = nullptr;
  sdn::Match constraint;
  /// Must equal the domain engines' traversal depth: a budget asymmetry
  /// between the walk and the flat reference is itself a divergence.
  std::size_t max_depth = 64;
};

std::optional<std::string> check_federation_vs_flat(
    const FederationOracleInput& in);

/// The fault-free reference: every switch's actual tables (and meters)
/// reconciled into a fresh snapshot at the loop's current time. This is
/// what the verifier's view would be if no control-channel message had
/// ever been dropped, delayed or voided.
core::SnapshotManager ground_truth_snapshot(workload::ScenarioRuntime& runtime);

/// Oracle (f) inputs.
struct FaultOracleInput {
  workload::ScenarioRuntime* runtime = nullptr;
  sdn::HostId client{};
  sdn::HostId path_peer{};
  sdn::Match constraint;
  /// Switches faulted at any point since the last completed heal (sorted).
  /// A verdict whose footprint touches the shadow may be legitimately
  /// stale without crossing a health threshold (a dropped passive update
  /// before the next poll), so clause 1 skips it; the harness's honesty
  /// clause owns sustained hard faults instead.
  std::vector<sdn::SwitchId> shadow;
  /// Live meter churn the verifier adopts only on its next poll; skip the
  /// meter-derived kind (mirrors oracle (b)'s meters_dirty_ gate).
  bool skip_fairness = false;
  /// Post-heal convergence mode: a degraded freshness section, a shadowed
  /// footprint or any byte divergence is a failure instead of a skip.
  bool strict = false;
  /// Incremented once per kind actually compared (the suite-level
  /// fault_checks floor counts these).
  std::uint64_t* checks = nullptr;
};

/// Oracle (f). Evaluates all 7 query kinds from `client`'s access point
/// through the runtime's live engine+snapshot and through a cold engine
/// over ground_truth_snapshot(); see FaultOracleInput for the skip rules.
std::optional<std::string> check_fault_equivalence(const FaultOracleInput& in);

}  // namespace rvaas::fuzz
