#pragma once
// The adversarial scenario fuzzer (rvaas::fuzz): executes one deterministic
// Schedule (schedule.hpp) on a fresh multi-tenant ScenarioRuntime —
// interleaving all six attack classes, flow/meter churn, one-shot queries,
// standing subscriptions and snapshot identity resets on the simulated
// event loop — and checks the differential oracles (oracles.hpp) after
// every step:
//
//   (a) warm engine (L1+L2 caches) ≡ fresh cold engine, all 7 query kinds
//   (b) monitor push notifications ≡ cold one-shot queries, byte-identical
//   (c) federation answers ≡ a flat engine over the merged topology
//   (d) detector verdicts ≡ AttackRecord ground truth (no missed detection;
//       query suppression detected via timeout)
//   (e) monitor inverted-index wakeup selection ≡ the retired linear
//       footprint scan, byte-identical Key lists at every step
//   (f) under control-channel fault injection (sdn/fault_plane.hpp):
//       non-degraded verdicts ≡ a cold engine over ground-truth switch
//       tables (no fail-wrong); switches under a sustained hard fault must
//       be degraded-marked (honesty — catches a frozen health machine);
//       after HealFaults the view reconverges byte-identically within a
//       bounded number of poll periods
//
// Every run is a pure function of the Schedule: a failure replays
// bit-identically from its repro string, which is what the shrinker
// (shrink.hpp) exploits.

#include "testing/schedule.hpp"

namespace rvaas::fuzz {

struct FuzzFailure {
  std::size_t step_index = 0;  ///< step after which the oracle tripped
  std::string oracle;          ///< cached-vs-cold | monitor-vs-query |
                               ///< federation-vs-flat | detection |
                               ///< index-vs-linear | liveness |
                               ///< fault-equivalence | fault-honesty |
                               ///< fault-convergence
  std::string detail;
};

struct FuzzReport {
  std::optional<FuzzFailure> failure;
  std::size_t steps_run = 0;

  // Coverage counters, so sweeps can assert the generator actually
  // exercises the interesting paths.
  std::uint64_t attacks_launched = 0;
  std::uint64_t attacks_reverted = 0;
  std::uint64_t churn_applied = 0;
  std::uint64_t meter_mods = 0;
  std::uint64_t queries_checked = 0;
  std::uint64_t notifications_compared = 0;
  std::uint64_t detection_checks = 0;
  std::uint64_t federation_checks = 0;
  std::uint64_t snapshot_resets = 0;
  std::uint64_t index_checks = 0;     ///< oracle (e) comparisons run
  std::uint64_t mass_subscribed = 0;  ///< untracked bulk subscriptions sent
  std::uint64_t faults_injected = 0;  ///< drop/delay/partition/crash steps
  std::uint64_t fault_heals = 0;      ///< HealFaults steps executed
  std::uint64_t fault_checks = 0;     ///< oracle (f) kind comparisons +
                                      ///< honesty checks run

  bool ok() const { return !failure.has_value(); }
};

/// Executes one schedule from scratch; returns the first oracle failure (if
/// any) and coverage counters.
FuzzReport run_schedule(const Schedule& schedule);

/// Replays a repro string (Schedule::repro()). Throws InvariantViolation on
/// malformed input — a repro that no longer parses is a bug, not a skip.
FuzzReport replay(const std::string& repro);

}  // namespace rvaas::fuzz
