#pragma once
// Schedule shrinking: given a failing Schedule, find a minimal failing
// prefix. Every run is deterministic, so shrinking is plain search: first
// truncate to the step that tripped the oracle (later steps never ran),
// then ddmin-style chunk removal — drop halves, quarters, ... single steps
// while the failure persists. Step operands resolve against live state
// modulo the current choices (schedule.hpp), so a schedule stays executable
// after any subset of steps is removed.

#include "testing/fuzzer.hpp"

namespace rvaas::fuzz {

struct ShrinkResult {
  Schedule schedule;    ///< minimal failing schedule found
  FuzzFailure failure;  ///< the failure it still produces
  std::size_t runs = 0; ///< schedule executions spent shrinking
};

/// Shrinks `failing` within a budget of `max_runs` executions. Returns
/// nullopt when `failing` does not actually fail (nothing to shrink). The
/// shrunk failure may trip a different oracle or step than the original —
/// any persisting failure is accepted (standard ddmin semantics).
std::optional<ShrinkResult> shrink(const Schedule& failing,
                                   std::size_t max_runs = 200);

}  // namespace rvaas::fuzz
