#pragma once
// Deterministic adversarial scenario schedules: the input language of the
// fuzzer (fuzzer.hpp). A Schedule is a scenario configuration plus a list of
// steps — attack installs/reverts, flow/meter churn, one-shot queries,
// standing subscriptions, settle periods, snapshot identity resets — all
// derived from one seed. Step operands are raw draws that the harness
// resolves against live runtime state ("pick modulo choices"), so a
// schedule stays executable after the shrinker (shrink.hpp) removes
// arbitrary steps, and a repro string replays bit-identically.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rvaas::fuzz {

enum class StepKind : std::uint8_t {
  Settle = 0,     ///< run the loop for (1 + a % 8) ms of simulated time
  FlowChurn,      ///< random provider rule: a = domain/switch, b/c = shape
  RemoveChurn,    ///< delete installed churn rule #a (no-op when none)
  MeterChurn,     ///< meter mod: a = switch, b = rate, c = meter id/burst
  Query,          ///< one-shot query: a = client, b = kind, c = constraint
  Subscribe,      ///< standing subscription: a = client, b = kind, c = shape
  Unsubscribe,    ///< drop tracked subscription #a (no-op when none)
  LaunchAttack,   ///< a = class (mod 6), b = victim, c = class-specific aux
  RevertAttack,   ///< revert active attack #a (no-op when none)
  SnapshotReset,  ///< RVaaS snapshot identity reset (restart simulation)
  MassSubscribe,  ///< bulk-register 4 + b % 5 untracked subscriptions across
                  ///< tenants: a = client base, c = query shape base. Grows
                  ///< the monitor registry so the index-vs-linear oracle
                  ///< exercises multi-entry index shards, not just the
                  ///< kMaxTrackedSubs handful.

  // Control-channel fault steps (sdn/fault_plane.hpp). Only generated when
  // generate_schedule() is asked for them; the harness forces fixed polling
  // for any schedule that contains one so degraded-health timing is
  // deterministic.
  InjectDrop,       ///< a = switch, b: drop p = 0.25*(1 + b % 4) both
                    ///< directions, c: c % 4 == 0 adds 25% duplication
  InjectDelay,      ///< a = switch, b: extra delay up to (1 + b % 5) ms
  InjectPartition,  ///< a = first switch, b: window (5 + b % 6) ms,
                    ///< c: 1 + c % 3 consecutive switches
  InjectCrash,      ///< a = switch: agent crash/restart (voids in-flight)
  HealFaults,       ///< clear all faults, then require full reconvergence
};
constexpr std::size_t kStepKindCount = 16;

const char* to_string(StepKind kind);

/// One schedule action. Operands are raw bounded draws; meaning is
/// per-kind (see StepKind comments and the harness).
struct Step {
  StepKind kind = StepKind::Settle;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;

  bool operator==(const Step&) const = default;
};

enum class TopologyKind : std::uint8_t {
  Linear = 0,
  Ring,
  Grid,
};
constexpr std::size_t kTopologyKindCount = 3;

const char* to_string(TopologyKind kind);

/// Scenario-level choices fixed for the whole schedule.
struct ScheduleConfig {
  TopologyKind topology = TopologyKind::Linear;
  std::uint32_t topo_size = 4;  ///< switch count (grid: see harness mapping)
  std::uint32_t tenant_count = 1;
  std::uint8_t polling = 0;  ///< 0 randomized, 1 fixed, 2 disabled
  /// Attach a peer RVaaS domain behind a border port and run the
  /// federation-vs-flat differential oracle (Linear topologies only).
  bool federation = false;
  std::uint64_t seed = 1;  ///< runtime seed (keys, poll jitter, nonces)

  bool operator==(const ScheduleConfig&) const = default;
};

struct Schedule {
  ScheduleConfig config;
  std::vector<Step> steps;

  bool operator==(const Schedule&) const = default;

  /// Self-contained single-line repro, parseable by parse_repro(). Paste
  /// into fuzz::replay() (see fuzzer.hpp) to rerun a shrunk failure as a
  /// plain gtest.
  std::string repro() const;
};

/// Largest grid size code the generator draws (and parse_repro accepts).
/// Codes map to grid dimensions in the harness: 0=2x2, 1=3x2, 2=3x3,
/// 3=4x3, 4=4x4.
constexpr std::uint32_t kMaxGridSizeCode = 4;

/// Derives a complete schedule (config + steps) from one seed. Equal seeds
/// always produce equal schedules, across processes and platforms.
/// `max_grid_code` caps the grid size draw (soak tooling exposes it as
/// --max-grid); the default sweeps the full range. With `include_faults`
/// the step weight table adds the five control-channel fault kinds (and a
/// trailing HealFaults so every run ends with a convergence check); without
/// it the table is byte-identical to the historical one, so pinned corpora
/// stay pinned.
Schedule generate_schedule(std::uint64_t seed,
                           std::uint32_t max_grid_code = kMaxGridSizeCode,
                           bool include_faults = false);

/// Parses Schedule::repro() output; nullopt on malformed input.
std::optional<Schedule> parse_repro(const std::string& text);

}  // namespace rvaas::fuzz
