#include "sim/event_loop.hpp"

namespace rvaas::sim {

EventId EventLoop::schedule_at(Time at, std::function<void()> fn) {
  util::ensure(at >= now_, "cannot schedule events in the past");
  const EventId id(next_id_++);
  queue_.push(QueueEntry{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool EventLoop::cancel(EventId id) {
  return handlers_.erase(id) > 0;  // queue entry is skipped lazily
}

std::optional<Time> EventLoop::next_event_time() {
  while (!queue_.empty() && !handlers_.contains(queue_.top().id)) {
    queue_.pop();  // cancelled
  }
  if (queue_.empty()) return std::nullopt;
  return queue_.top().time;
}

bool EventLoop::dispatch_next(Time deadline) {
  while (!queue_.empty()) {
    const QueueEntry entry = queue_.top();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    if (entry.time > deadline) return false;
    queue_.pop();
    now_ = entry.time;
    auto fn = std::move(it->second);
    handlers_.erase(it);
    fn();
    return true;
  }
  return false;
}

void EventLoop::run() {
  stopped_ = false;
  while (!stopped_ && dispatch_next(~Time{0})) {
  }
}

void EventLoop::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && dispatch_next(deadline)) {
  }
  // An early stop() keeps the clock where the stopping event left it.
  if (!stopped_) now_ = std::max(now_, deadline);
}

}  // namespace rvaas::sim
