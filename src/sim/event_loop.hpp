#pragma once
// Deterministic discrete-event simulator. All protocol-level behaviour
// (packet hops, control-channel messages, pollers, timeouts) is scheduled
// here, so experiments measure reproducible simulated time.

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>

#include "util/ensure.hpp"
#include "util/ids.hpp"

namespace rvaas::sim {

/// Simulated time in nanoseconds since simulation start.
using Time = std::uint64_t;

constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

inline double to_ms(Time t) { return static_cast<double>(t) / kMillisecond; }
inline double to_us(Time t) { return static_cast<double>(t) / kMicrosecond; }

using EventId = util::StrongId<struct EventIdTag, std::uint64_t>;

class EventLoop {
 public:
  /// Schedules `fn` at absolute simulated time `at` (must be >= now()).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` `delay` after the current time.
  EventId schedule_after(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; returns false if it already ran / was cancelled.
  bool cancel(EventId id);

  Time now() const { return now_; }
  std::size_t pending() const { return handlers_.size(); }

  /// Earliest pending event time, nullopt when the queue is drained. Lazily
  /// discards cancelled entries. Lets a real-time driver (src/net's wire
  /// service) sleep exactly until the next due event instead of polling.
  std::optional<Time> next_event_time();

  /// Runs until the queue is empty (or stop() is called).
  void run();

  /// Runs events with time <= deadline; afterwards now() == max(now, deadline).
  void run_until(Time deadline);

  /// Stops run()/run_until() after the current event returns.
  void stop() { stopped_ = true; }

 private:
  struct QueueEntry {
    Time time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    EventId id;
    bool operator>(const QueueEntry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  bool dispatch_next(Time deadline);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  bool stopped_ = false;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace rvaas::sim
