#pragma once
// Compiles a switch flow table into an HSA transfer function: an ordered rule
// list where each rule carries a match cube and, per Output/Controller action
// reached, the accumulated header rewrite at that point in the action list
// (matching the sequential pipeline semantics of SwitchSim exactly).

#include <map>
#include <optional>
#include <vector>

#include "hsa/header_space.hpp"
#include "sdn/flow_table.hpp"
#include "sdn/types.hpp"

namespace rvaas::hsa {

/// One effect of a rule: where a copy goes and the rewrite it undergoes.
struct TfOutput {
  enum class Kind { Port, Controller };
  Kind kind = Kind::Port;
  sdn::PortNo port{};  ///< valid when kind == Port
  Rewrite rewrite;

  bool operator==(const TfOutput&) const = default;
};

struct CompiledRule {
  sdn::FlowEntryId entry_id{};
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
  std::optional<sdn::PortNo> in_port;
  Wildcard match;  ///< field constraints as a cube
  std::vector<TfOutput> outputs;

  bool operator==(const CompiledRule&) const = default;
};

/// Converts a Match's field constraints into a cube (ignores in_port,
/// which the transfer function handles separately).
Wildcard match_to_cube(const sdn::Match& match);

/// Result of pushing a header space through one switch.
struct TfResult {
  TfOutput::Kind kind = TfOutput::Kind::Port;
  sdn::PortNo port{};
  std::uint64_t cookie = 0;
  sdn::FlowEntryId entry_id{};  ///< the rule that carried this subspace
  HeaderSpace space;
};

class SwitchTransfer {
 public:
  SwitchTransfer() = default;

  /// Compiles the entries (must already be in match order: priority desc,
  /// id asc, as produced by FlowTable::entries or StatsReply).
  static SwitchTransfer compile(const std::vector<sdn::FlowEntry>& entries);

  /// Applies the transfer function: the incoming space is matched against
  /// rules in priority order with shadowing (each rule consumes its matched
  /// subspace). Unmatched space is dropped (table-miss drop).
  std::vector<TfResult> apply(sdn::PortNo in_port, const HeaderSpace& hs) const;

  const std::vector<CompiledRule>& rules() const { return rules_; }

  /// Structural equality of the compiled rule lists (used to pin incremental
  /// recompilation identical to a cold full compile).
  bool operator==(const SwitchTransfer&) const = default;

 private:
  std::vector<CompiledRule> rules_;
};

/// Per-switch transfer functions for a whole network configuration.
using NetworkTransfer = std::map<sdn::SwitchId, SwitchTransfer>;

NetworkTransfer compile_network(
    const std::map<sdn::SwitchId, std::vector<sdn::FlowEntry>>& tables);

}  // namespace rvaas::hsa
