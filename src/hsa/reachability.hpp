#pragma once
// Network-wide reachability over compiled transfer functions: given an
// injection port and a header space, compute every egress port (and punt to
// controller) any subset of that space can reach, with the traversed switch
// paths — the static packet-trajectory analysis at the core of RVaaS's
// logical verification step (§IV.A.2 of the paper).

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "hsa/transfer.hpp"
#include "sdn/topology.hpp"
#include "util/thread_pool.hpp"

namespace rvaas::hsa {

/// A subspace of the injected traffic that exits the network somewhere.
struct ReachedEndpoint {
  sdn::PortRef egress;
  std::optional<sdn::HostId> host;  ///< nullopt = dark (unplugged) port
  HeaderSpace space;
  std::vector<sdn::SwitchId> path;  ///< switches traversed, in order
  /// The flow entries that carried this subspace, hop by hop (enables
  /// meter/fairness attribution).
  std::vector<std::pair<sdn::SwitchId, sdn::FlowEntryId>> rules;

  bool operator==(const ReachedEndpoint&) const = default;
};

/// A subspace punted to the control plane.
struct ControllerHit {
  sdn::SwitchId sw{};
  std::uint64_t cookie = 0;
  HeaderSpace space;
  std::vector<sdn::SwitchId> path;

  bool operator==(const ControllerHit&) const = default;
};

/// A forwarding loop: the space re-entered a switch already on its path.
struct LoopFinding {
  std::vector<sdn::SwitchId> path;  ///< ends at the repeated switch
  HeaderSpace space;

  bool operator==(const LoopFinding&) const = default;
};

struct ReachabilityResult {
  std::vector<ReachedEndpoint> endpoints;
  std::vector<ControllerHit> controller_hits;
  std::vector<LoopFinding> loops;
  std::size_t steps = 0;  ///< rule applications (cost metric for benches)
  /// Dependency footprint: every switch whose (possibly absent) transfer
  /// function the traversal consulted, sorted ascending. A configuration
  /// change confined to switches OUTSIDE this set cannot alter the result —
  /// the invalidation rule of core::ReachCache (rvaas/engine.hpp). Recorded
  /// whenever a work item survives dominance pruning at a port; fully pruned
  /// re-visits are covered by the earlier visit that seeded the pruning.
  std::vector<sdn::SwitchId> footprint;

  /// Unique hosts reachable (sorted).
  std::vector<sdn::HostId> reached_hosts() const;
  /// Unique egress access points (sorted).
  std::vector<sdn::PortRef> reached_ports() const;
  /// Union of all traversed switches (sorted).
  std::vector<sdn::SwitchId> traversed_switches() const;

  /// true iff the sorted footprint shares a switch with `dirty` (sorted).
  bool depends_on(std::span<const sdn::SwitchId> dirty) const;

  bool operator==(const ReachabilityResult&) const = default;
};

/// The logical network model: trusted wiring plan + per-switch transfer
/// functions compiled from a configuration snapshot. The transfer map is
/// held behind a shared_ptr so an incremental compiler (CompiledModelCache)
/// can hand out models without copying compiled state; a model keeps the
/// map it was built with alive and immutable.
class NetworkModel {
 public:
  NetworkModel(const sdn::Topology& topo, NetworkTransfer transfer)
      : topo_(&topo),
        transfer_(std::make_shared<const NetworkTransfer>(
            std::move(transfer))) {}

  /// Shares an externally maintained transfer map without copying it.
  NetworkModel(const sdn::Topology& topo,
               std::shared_ptr<const NetworkTransfer> transfer)
      : topo_(&topo), transfer_(std::move(transfer)) {}

  static NetworkModel from_tables(
      const sdn::Topology& topo,
      const std::map<sdn::SwitchId, std::vector<sdn::FlowEntry>>& tables) {
    return NetworkModel(topo, compile_network(tables));
  }

  /// BFS of (port, space) pairs from an ingress port. Visited spaces are
  /// tracked per (switch, in-port) for dominance pruning, so termination is
  /// guaranteed even with loops.
  ReachabilityResult reach(sdn::PortRef ingress, const HeaderSpace& hs,
                           std::size_t max_depth = 64) const;

  /// Convenience: reach from a host's first access point with full space.
  ReachabilityResult reach_from_host(sdn::HostId host) const;

  /// All-pairs building block: one independent reach() per ingress, fanned
  /// out over `pool` (the model is immutable, so runs share it freely).
  /// Results are positionally identical to sequential reach() calls.
  std::vector<ReachabilityResult> reach_all(
      std::span<const sdn::PortRef> ingresses, const HeaderSpace& hs,
      util::ThreadPool& pool, std::size_t max_depth = 64) const;

  /// Inverse reachability: which access points can send traffic (within
  /// `hs`) that arrives at `target`? Computed by forward reach from every
  /// access point (sound; cost = |access points| reach runs, fanned out
  /// over `pool` in the overload).
  std::vector<sdn::PortRef> sources_reaching(sdn::PortRef target,
                                             const HeaderSpace& hs) const;
  std::vector<sdn::PortRef> sources_reaching(sdn::PortRef target,
                                             const HeaderSpace& hs,
                                             util::ThreadPool& pool) const;

  const sdn::Topology& topology() const { return *topo_; }
  const NetworkTransfer& transfer() const { return *transfer_; }

 private:
  const sdn::Topology* topo_;
  std::shared_ptr<const NetworkTransfer> transfer_;
};

}  // namespace rvaas::hsa
