#include "hsa/wildcard.hpp"

#include <bit>
#include <sstream>

#include "util/ensure.hpp"
#include "util/fnv.hpp"

namespace rvaas::hsa {

using sdn::Field;
using sdn::field_info;
using sdn::field_mask;
using sdn::kFieldCount;
using sdn::kFields;

namespace {

// Unused high bits (beyond 2*kBits) are kept at 1 so they never look
// contradictory and do not disturb equality/subset checks.
constexpr std::size_t kUsedBitsInLastWord = (2 * Wildcard::kBits) % 64;

/// Header-bit index of field bit j (j = 0 is the field's LSB; the field's
/// MSB sits at the field's offset).
constexpr std::size_t header_bit(const sdn::FieldInfo& info, unsigned j) {
  return info.offset + info.width - 1 - j;
}

}  // namespace

Wildcard::Wildcard() { words_.fill(~std::uint64_t{0}); }

Wildcard Wildcard::encode(const sdn::HeaderFields& h) {
  Wildcard w;
  for (const auto& info : kFields) w.set_field(info.field, h.get(info.field));
  return w;
}

bool Wildcard::is_empty() const {
  for (std::size_t word = 0; word < kWords; ++word) {
    // A 00 pair exists iff (~w) has both bits of some pair set:
    const std::uint64_t inv = ~words_[word];
    std::uint64_t pairs = inv & (inv >> 1) & 0x5555555555555555ULL;
    if (word == kWords - 1 && kUsedBitsInLastWord != 0) {
      pairs &= (std::uint64_t{1} << kUsedBitsInLastWord) - 1;
    }
    if (pairs != 0) return true;
  }
  return false;
}

Trit Wildcard::get_bit(std::size_t i) const {
  util::ensure(i < kBits, "wildcard bit index out of range");
  const std::size_t pos = 2 * i;
  const auto pair =
      static_cast<std::uint8_t>((words_[pos / 64] >> (pos % 64)) & 0b11);
  util::ensure(pair != 0, "reading contradictory wildcard bit");
  return static_cast<Trit>(pair);
}

void Wildcard::set_bit(std::size_t i, Trit t) {
  util::ensure(i < kBits, "wildcard bit index out of range");
  const std::size_t pos = 2 * i;
  words_[pos / 64] &= ~(std::uint64_t{0b11} << (pos % 64));
  words_[pos / 64] |= static_cast<std::uint64_t>(t) << (pos % 64);
}

void Wildcard::set_field(Field f, std::uint64_t value) {
  set_field_masked(f, value, field_mask(f));
}

void Wildcard::set_field_masked(Field f, std::uint64_t value,
                                std::uint64_t mask) {
  util::ensure((mask & ~field_mask(f)) == 0, "mask exceeds field width");
  util::ensure((value & ~mask) == 0, "value has bits outside mask");
  const auto& info = field_info(f);
  for (unsigned j = 0; j < info.width; ++j) {
    if ((mask >> j) & 1) {
      set_bit(header_bit(info, j),
              ((value >> j) & 1) ? Trit::One : Trit::Zero);
    }
  }
}

Wildcard Wildcard::intersect(const Wildcard& other) const {
  Wildcard out = *this;
  for (std::size_t w = 0; w < kWords; ++w) out.words_[w] &= other.words_[w];
  return out;
}

bool Wildcard::subset_of(const Wildcard& other) const {
  for (std::size_t w = 0; w < kWords; ++w) {
    if ((words_[w] & other.words_[w]) != words_[w]) return false;
  }
  return true;
}

void Wildcard::or_into(WordMask& acc) const {
  for (std::size_t w = 0; w < kWords; ++w) acc[w] |= words_[w];
}

bool Wildcard::subset_of_mask(const WordMask& acc) const {
  for (std::size_t w = 0; w < kWords; ++w) {
    if ((words_[w] & acc[w]) != words_[w]) return false;
  }
  return true;
}

bool Wildcard::subset_within(const Wildcard& other, const WordMask& mask) const {
  for (std::size_t w = 0; w < kWords; ++w) {
    const std::uint64_t mine = words_[w] & mask[w];
    if ((mine & other.words_[w]) != mine) return false;
  }
  return true;
}

std::optional<Wildcard> Wildcard::merge_with(const Wildcard& other) const {
  // Count bit positions (pairs) where the two cubes differ. Differing in at
  // most one position means the trit-wise OR covers exactly this ∪ other:
  // all other coordinates agree, and at the differing one the OR is the
  // union of the two trits (0|1 = x, t|x = x).
  constexpr std::uint64_t kLow = 0x5555555555555555ULL;
  int diff_pairs = 0;
  for (std::size_t w = 0; w < kWords && diff_pairs <= 1; ++w) {
    const std::uint64_t x = words_[w] ^ other.words_[w];
    if (x == 0) continue;
    diff_pairs += std::popcount((x | (x >> 1)) & kLow);
  }
  if (diff_pairs <= 1) {
    Wildcard out = *this;
    for (std::size_t w = 0; w < kWords; ++w) out.words_[w] |= other.words_[w];
    return out;
  }
  // Multi-position containment: the union is the larger cube.
  if (subset_of(other)) return other;
  if (other.subset_of(*this)) return *this;
  return std::nullopt;
}

std::uint64_t Wildcard::hash_value() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const std::uint64_t w : words_) h = util::fnv1a_mix(h, w);
  return h;
}

bool Wildcard::contains(const sdn::HeaderFields& h) const {
  for (const auto& info : kFields) {
    const std::uint64_t v = h.get(info.field);
    for (unsigned j = 0; j < info.width; ++j) {
      const Trit t = get_bit(header_bit(info, j));
      if (t == Trit::Any) continue;
      const bool bit = (v >> j) & 1;
      if (bit != (t == Trit::One)) return false;
    }
  }
  return true;
}

sdn::HeaderFields Wildcard::sample(util::Rng& rng) const {
  util::ensure(!is_empty(), "cannot sample from empty cube");
  sdn::HeaderFields h;
  for (const auto& info : kFields) {
    std::uint64_t v = 0;
    for (unsigned j = 0; j < info.width; ++j) {
      const Trit t = get_bit(header_bit(info, j));
      const bool bit = (t == Trit::One) || (t == Trit::Any && rng.next_bit());
      if (bit) v |= std::uint64_t{1} << j;
    }
    h.set(info.field, v);
  }
  return h;
}

std::size_t Wildcard::free_bits() const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < kBits; ++i) {
    if (get_bit(i) == Trit::Any) ++count;
  }
  return count;
}

std::string Wildcard::field_to_string(Field f) const {
  const auto& info = field_info(f);
  std::string out;
  out.reserve(info.width);
  for (unsigned j = info.width; j-- > 0;) {
    switch (get_bit(header_bit(info, j))) {
      case Trit::Zero:
        out.push_back('0');
        break;
      case Trit::One:
        out.push_back('1');
        break;
      case Trit::Any:
        out.push_back('x');
        break;
    }
  }
  return out;
}

std::string Wildcard::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& info : kFields) {
    const std::string bits = field_to_string(info.field);
    if (bits.find_first_not_of('x') == std::string::npos) continue;
    if (!first) os << " ";
    first = false;
    os << info.name << "=" << bits;
  }
  if (first) return "*";
  return os.str();
}

void Rewrite::set_field(Field f, std::uint64_t value) {
  util::ensure((value & ~field_mask(f)) == 0, "rewrite value too wide");
  fields_ |= 1u << static_cast<unsigned>(f);
  values_[static_cast<std::size_t>(f)] = value;
}

bool Rewrite::touches(Field f) const {
  return (fields_ >> static_cast<unsigned>(f)) & 1;
}

Wildcard::WordMask Rewrite::bit_mask() const {
  Wildcard::WordMask mask{};
  for (const auto& info : kFields) {
    if (!touches(info.field)) continue;
    for (unsigned j = 0; j < info.width; ++j) {
      const std::size_t pos = 2 * header_bit(info, j);
      mask[pos / 64] |= std::uint64_t{0b11} << (pos % 64);
    }
  }
  return mask;
}

Wildcard Rewrite::apply(const Wildcard& w) const {
  Wildcard out = w;
  for (const auto& info : kFields) {
    if (touches(info.field)) {
      out.set_field(info.field, values_[static_cast<std::size_t>(info.field)]);
    }
  }
  return out;
}

sdn::HeaderFields Rewrite::apply(const sdn::HeaderFields& h) const {
  sdn::HeaderFields out = h;
  for (const auto& info : kFields) {
    if (touches(info.field)) {
      out.set(info.field, values_[static_cast<std::size_t>(info.field)]);
    }
  }
  return out;
}

std::vector<Wildcard> cube_subtract(const Wildcard& a, const Wildcard& b) {
  if (a.is_empty()) return {};
  if (!a.intersects(b)) return {a};
  // One piece per position where b is constrained and a is free: the piece is
  // a with that bit forced to b's complement. Positions where a is fixed and
  // equal to b remove nothing; fixed and different would make a ∩ b empty
  // (handled above). Scanned word-by-word: the low bit of a pair is set in
  // `*_any` iff the pair decodes to 11 (x).
  constexpr std::uint64_t kLow = 0x5555555555555555ULL;
  std::vector<Wildcard> out;
  for (std::size_t w = 0; w < Wildcard::kWords; ++w) {
    const std::uint64_t aw = a.words_[w];
    const std::uint64_t bw = b.words_[w];
    const std::uint64_t a_any = aw & (aw >> 1) & kLow;
    const std::uint64_t b_any = bw & (bw >> 1) & kLow;
    // Padding pairs beyond 2*kBits are 11 in both, so they never qualify.
    std::uint64_t candidates = a_any & ~b_any;
    while (candidates != 0) {
      const int pos = std::countr_zero(candidates);
      candidates &= candidates - 1;
      Wildcard piece = a;
      // b's pair at pos is 01 (0) or 10 (1); the piece takes the complement.
      const std::uint64_t b_pair = (bw >> pos) & 0b11;
      const std::uint64_t flipped = b_pair ^ 0b11;
      piece.words_[w] &= ~(std::uint64_t{0b11} << pos);
      piece.words_[w] |= flipped << pos;
      out.push_back(std::move(piece));
    }
  }
  return out;
}

void insert_canonical(std::vector<Wildcard>& cubes, Wildcard w) {
  // Absorb / merge to a fixpoint: a successful merge removes one list
  // element and restarts with the (strictly larger) merged cube, which may
  // now absorb or merge with further cubes, so the loop terminates.
  for (;;) {
    bool merged = false;
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      if (w.subset_of(cubes[i])) return;  // already covered
      if (cubes[i].subset_of(w)) {
        cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        continue;
      }
      if (auto m = cubes[i].merge_with(w)) {
        w = std::move(*m);
        cubes.erase(cubes.begin() + static_cast<std::ptrdiff_t>(i));
        merged = true;
        break;
      }
    }
    if (!merged) break;
  }
  cubes.push_back(std::move(w));
}

}  // namespace rvaas::hsa
