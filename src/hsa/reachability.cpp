#include "hsa/reachability.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/ensure.hpp"

namespace rvaas::hsa {

using sdn::PortRef;
using sdn::SwitchId;

namespace {

/// Sorts and uniques in place — one sort instead of a node-based set.
template <class T>
void sort_unique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::vector<sdn::HostId> ReachabilityResult::reached_hosts() const {
  std::vector<sdn::HostId> out;
  out.reserve(endpoints.size());
  for (const auto& e : endpoints) {
    if (e.host) out.push_back(*e.host);
  }
  sort_unique(out);
  return out;
}

std::vector<PortRef> ReachabilityResult::reached_ports() const {
  std::vector<PortRef> out;
  out.reserve(endpoints.size());
  for (const auto& e : endpoints) out.push_back(e.egress);
  sort_unique(out);
  return out;
}

std::vector<SwitchId> ReachabilityResult::traversed_switches() const {
  std::vector<SwitchId> out;
  for (const auto& e : endpoints) {
    out.insert(out.end(), e.path.begin(), e.path.end());
  }
  for (const auto& c : controller_hits) {
    out.insert(out.end(), c.path.begin(), c.path.end());
  }
  for (const auto& l : loops) {
    out.insert(out.end(), l.path.begin(), l.path.end());
  }
  sort_unique(out);
  return out;
}

bool ReachabilityResult::depends_on(std::span<const SwitchId> dirty) const {
  // Both sides sorted: a two-pointer sweep finds any common switch.
  auto a = footprint.begin();
  auto b = dirty.begin();
  while (a != footprint.end() && b != dirty.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

ReachabilityResult NetworkModel::reach(PortRef ingress, const HeaderSpace& hs,
                                       std::size_t max_depth) const {
  util::ensure(topo_->valid_port(ingress), "bad ingress port");
  ReachabilityResult result;

  struct WorkItem {
    PortRef in;
    HeaderSpace space;
    std::vector<SwitchId> path;
    std::vector<std::pair<SwitchId, sdn::FlowEntryId>> rules;
  };
  std::deque<WorkItem> queue;
  queue.push_back(WorkItem{ingress, hs, {}, {}});

  // Dominance pruning: spaces already explored per (switch, in-port). A new
  // space is narrowed by what was seen; only the new part continues. This
  // bounds the walk even through loops (each visit strictly grows coverage).
  // The hottest associative lookup of the BFS inner loop — hashed, not
  // ordered (PortRef hashes in sdn/types.hpp).
  std::unordered_map<PortRef, std::vector<Wildcard>> visited;

  // Switches the walk consulted; becomes result.footprint (deduped at the
  // end — no per-visit tree walk in the inner loop).
  std::vector<SwitchId> touched;

  while (!queue.empty()) {
    WorkItem item = std::move(queue.front());
    queue.pop_front();

    if (item.path.size() >= max_depth) continue;
    if (item.space.is_empty()) continue;

    // Loop check: re-entering a switch already on this walk's path.
    if (std::find(item.path.begin(), item.path.end(), item.in.sw) !=
        item.path.end()) {
      auto loop_path = item.path;
      loop_path.push_back(item.in.sw);
      result.loops.push_back(LoopFinding{std::move(loop_path), item.space});
      continue;
    }

    // Dominance pruning against previously explored spaces at this port.
    std::vector<Wildcard>& seen_here = visited[item.in];
    HeaderSpace fresh = item.space;
    for (const Wildcard& seen : seen_here) {
      fresh = fresh.subtract(seen);
    }
    fresh.compact();
    if (fresh.is_empty()) continue;
    // Canonical insertion keeps the per-port coverage list merged as the
    // BFS produces it: fewer, larger cubes mean the dominance subtraction
    // above appends fewer diffs to every later space through this port —
    // the in-BFS half of the cube-blowup fix (the other half is bounded
    // lazy diffs in HeaderSpace::subtract). The flatten is budgeted:
    // a cube whose plain form would blow past the materialization bound is
    // left out of the coverage list (an under-approximation — sound here,
    // it only means that slice can be explored again).
    for (Wildcard& cube :
         fresh.resolve_within(HeaderSpace::kMaxMaterializeCubes)) {
      insert_canonical(seen_here, std::move(cube));
    }

    // The walk is about to consult this switch's transfer function (present
    // or not): the result now depends on its table content.
    touched.push_back(item.in.sw);

    const auto tf_it = transfer_->find(item.in.sw);
    if (tf_it == transfer_->end()) continue;  // switch absent from snapshot

    auto path = item.path;
    path.push_back(item.in.sw);

    for (TfResult& tr : tf_it->second.apply(item.in.port, fresh)) {
      ++result.steps;
      if (tr.kind == TfOutput::Kind::Controller) {
        result.controller_hits.push_back(
            ControllerHit{item.in.sw, tr.cookie, std::move(tr.space), path});
        continue;
      }
      auto rules = item.rules;
      rules.emplace_back(item.in.sw, tr.entry_id);
      const PortRef out{item.in.sw, tr.port};
      if (const auto peer = topo_->link_peer(out)) {
        queue.push_back(
            WorkItem{*peer, std::move(tr.space), path, std::move(rules)});
      } else {
        result.endpoints.push_back(
            ReachedEndpoint{out, topo_->host_at(out), std::move(tr.space),
                            path, std::move(rules)});
      }
    }
  }
  sort_unique(touched);
  result.footprint = std::move(touched);
  return result;
}

ReachabilityResult NetworkModel::reach_from_host(sdn::HostId host) const {
  const auto ports = topo_->host_ports(host);
  util::ensure(!ports.empty(), "host has no access point");
  return reach(ports.front(), HeaderSpace::all());
}

std::vector<ReachabilityResult> NetworkModel::reach_all(
    std::span<const PortRef> ingresses, const HeaderSpace& hs,
    util::ThreadPool& pool, std::size_t max_depth) const {
  std::vector<ReachabilityResult> out(ingresses.size());
  pool.parallel_for(ingresses.size(), [&](std::size_t i) {
    out[i] = reach(ingresses[i], hs, max_depth);
  });
  return out;
}

std::vector<PortRef> NetworkModel::sources_reaching(
    PortRef target, const HeaderSpace& hs) const {
  util::ThreadPool inline_pool(0);
  return sources_reaching(target, hs, inline_pool);
}

std::vector<PortRef> NetworkModel::sources_reaching(
    PortRef target, const HeaderSpace& hs, util::ThreadPool& pool) const {
  std::vector<PortRef> candidates;
  for (const PortRef ap : topo_->all_access_points()) {
    if (ap == target) continue;
    candidates.push_back(ap);
  }
  const std::vector<ReachabilityResult> results =
      reach_all(candidates, hs, pool);

  std::vector<PortRef> sources;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto ports = results[i].reached_ports();
    if (std::binary_search(ports.begin(), ports.end(), target)) {
      sources.push_back(candidates[i]);
    }
  }
  return sources;
}

}  // namespace rvaas::hsa
