#include "hsa/reachability.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/ensure.hpp"

namespace rvaas::hsa {

using sdn::PortRef;
using sdn::SwitchId;

std::vector<sdn::HostId> ReachabilityResult::reached_hosts() const {
  std::set<sdn::HostId> seen;
  for (const auto& e : endpoints) {
    if (e.host) seen.insert(*e.host);
  }
  return {seen.begin(), seen.end()};
}

std::vector<PortRef> ReachabilityResult::reached_ports() const {
  std::set<PortRef> seen;
  for (const auto& e : endpoints) seen.insert(e.egress);
  return {seen.begin(), seen.end()};
}

std::vector<SwitchId> ReachabilityResult::traversed_switches() const {
  std::set<SwitchId> seen;
  for (const auto& e : endpoints) {
    for (const SwitchId sw : e.path) seen.insert(sw);
  }
  for (const auto& c : controller_hits) {
    for (const SwitchId sw : c.path) seen.insert(sw);
  }
  for (const auto& l : loops) {
    for (const SwitchId sw : l.path) seen.insert(sw);
  }
  return {seen.begin(), seen.end()};
}

ReachabilityResult NetworkModel::reach(PortRef ingress, const HeaderSpace& hs,
                                       std::size_t max_depth) const {
  util::ensure(topo_->valid_port(ingress), "bad ingress port");
  ReachabilityResult result;

  struct WorkItem {
    PortRef in;
    HeaderSpace space;
    std::vector<SwitchId> path;
    std::vector<std::pair<SwitchId, sdn::FlowEntryId>> rules;
  };
  std::deque<WorkItem> queue;
  queue.push_back(WorkItem{ingress, hs, {}, {}});

  // Dominance pruning: spaces already explored per (switch, in-port). A new
  // space is narrowed by what was seen; only the new part continues. This
  // bounds the walk even through loops (each visit strictly grows coverage).
  std::map<PortRef, std::vector<Wildcard>> visited;

  while (!queue.empty()) {
    WorkItem item = std::move(queue.front());
    queue.pop_front();

    if (item.path.size() >= max_depth) continue;
    if (item.space.is_empty()) continue;

    // Loop check: re-entering a switch already on this walk's path.
    if (std::find(item.path.begin(), item.path.end(), item.in.sw) !=
        item.path.end()) {
      auto loop_path = item.path;
      loop_path.push_back(item.in.sw);
      result.loops.push_back(LoopFinding{std::move(loop_path), item.space});
      continue;
    }

    // Dominance pruning against previously explored spaces at this port.
    HeaderSpace fresh = item.space;
    for (const Wildcard& seen : visited[item.in]) {
      fresh = fresh.subtract(seen);
    }
    fresh.compact();
    if (fresh.is_empty()) continue;
    for (const Wildcard& cube : fresh.resolve()) {
      visited[item.in].push_back(cube);
    }

    const auto tf_it = transfer_->find(item.in.sw);
    if (tf_it == transfer_->end()) continue;  // switch absent from snapshot

    auto path = item.path;
    path.push_back(item.in.sw);

    for (TfResult& tr : tf_it->second.apply(item.in.port, fresh)) {
      ++result.steps;
      if (tr.kind == TfOutput::Kind::Controller) {
        result.controller_hits.push_back(
            ControllerHit{item.in.sw, tr.cookie, std::move(tr.space), path});
        continue;
      }
      auto rules = item.rules;
      rules.emplace_back(item.in.sw, tr.entry_id);
      const PortRef out{item.in.sw, tr.port};
      if (const auto peer = topo_->link_peer(out)) {
        queue.push_back(
            WorkItem{*peer, std::move(tr.space), path, std::move(rules)});
      } else {
        result.endpoints.push_back(
            ReachedEndpoint{out, topo_->host_at(out), std::move(tr.space),
                            path, std::move(rules)});
      }
    }
  }
  return result;
}

ReachabilityResult NetworkModel::reach_from_host(sdn::HostId host) const {
  const auto ports = topo_->host_ports(host);
  util::ensure(!ports.empty(), "host has no access point");
  return reach(ports.front(), HeaderSpace::all());
}

std::vector<PortRef> NetworkModel::sources_reaching(
    PortRef target, const HeaderSpace& hs) const {
  std::vector<PortRef> sources;
  for (const PortRef ap : topo_->all_access_points()) {
    if (ap == target) continue;
    const ReachabilityResult r = reach(ap, hs);
    const auto ports = r.reached_ports();
    if (std::binary_search(ports.begin(), ports.end(), target)) {
      sources.push_back(ap);
    }
  }
  return sources;
}

}  // namespace rvaas::hsa
