#include "hsa/transfer.hpp"

#include "util/ensure.hpp"

namespace rvaas::hsa {

using sdn::Field;

Wildcard match_to_cube(const sdn::Match& match) {
  Wildcard w;
  for (const sdn::FieldMatch& fm : match.field_matches()) {
    w.set_field_masked(fm.field, fm.value, fm.mask);
  }
  return w;
}

SwitchTransfer SwitchTransfer::compile(
    const std::vector<sdn::FlowEntry>& entries) {
  SwitchTransfer tf;
  tf.rules_.reserve(entries.size());
  for (const sdn::FlowEntry& e : entries) {
    CompiledRule rule;
    rule.entry_id = e.id;
    rule.priority = e.priority;
    rule.cookie = e.cookie;
    rule.in_port = e.match.in_port();
    rule.match = match_to_cube(e.match);

    // Walk the action list accumulating the rewrite; emit an output snapshot
    // at each Output/Controller action (mirrors SwitchSim::run_actions).
    Rewrite acc;
    bool stopped = false;
    for (const sdn::Action& action : e.actions) {
      if (stopped) break;
      std::visit(
          [&](const auto& act) {
            using T = std::decay_t<decltype(act)>;
            if constexpr (std::is_same_v<T, sdn::OutputAction>) {
              rule.outputs.push_back(
                  TfOutput{TfOutput::Kind::Port, act.port, acc});
            } else if constexpr (std::is_same_v<T, sdn::ControllerAction>) {
              rule.outputs.push_back(
                  TfOutput{TfOutput::Kind::Controller, sdn::PortNo(0), acc});
            } else if constexpr (std::is_same_v<T, sdn::DropAction>) {
              stopped = true;
            } else if constexpr (std::is_same_v<T, sdn::SetFieldAction>) {
              acc.set_field(act.field, act.value);
            } else if constexpr (std::is_same_v<T, sdn::PushVlanAction>) {
              acc.set_field(Field::Vlan, act.vid);
            } else if constexpr (std::is_same_v<T, sdn::PopVlanAction>) {
              acc.set_field(Field::Vlan, 0);
            } else if constexpr (std::is_same_v<T, sdn::DecTtlAction>) {
              // TTL is outside the modeled header space. A TTL of 0 only
              // shortens concrete walks; HSA computes the TTL-unbounded
              // reachable set (sound over-approximation for detection).
            }
          },
          action);
    }
    tf.rules_.push_back(std::move(rule));
  }
  return tf;
}

std::vector<TfResult> SwitchTransfer::apply(sdn::PortNo in_port,
                                            const HeaderSpace& hs) const {
  std::vector<TfResult> results;
  HeaderSpace remaining = hs;
  for (const CompiledRule& rule : rules_) {
    if (remaining.is_empty()) break;
    if (rule.in_port && *rule.in_port != in_port) continue;

    HeaderSpace hit = remaining.intersect(rule.match);
    if (hit.is_empty()) continue;
    // Canonicalize the hit before it fans out: the intersection narrows
    // every cube toward the rule's match, which collapses many of them
    // into duplicates/subsets — merging here (not only at the end of the
    // BFS step) keeps each emitted TfResult small at the source.
    hit.compact();

    for (const TfOutput& out : rule.outputs) {
      TfResult r;
      r.kind = out.kind;
      r.port = out.port;
      r.cookie = rule.cookie;
      r.entry_id = rule.entry_id;
      r.space = hit.rewrite(out.rewrite);
      r.space.compact();
      if (!r.space.is_empty()) results.push_back(std::move(r));
    }
    remaining = remaining.subtract(rule.match);
  }
  return results;
}

NetworkTransfer compile_network(
    const std::map<sdn::SwitchId, std::vector<sdn::FlowEntry>>& tables) {
  NetworkTransfer tf;
  for (const auto& [sw, entries] : tables) {
    tf[sw] = SwitchTransfer::compile(entries);
  }
  return tf;
}

}  // namespace rvaas::hsa
