#pragma once
// Header Space Analysis primitives (Kazemian, Varghese, McKeown — NSDI'12),
// implemented from scratch for the 228-bit header layout of sdn/header.hpp.
//
// A Wildcard is a ternary vector over {0, 1, x}: a cube in {0,1}^228. Each
// header bit is encoded in 2 bits — 01 = must-be-0, 10 = must-be-1,
// 11 = either (x), 00 = contradiction — so intersection is a bitwise AND and
// emptiness is "some pair decodes to 00".

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sdn/header.hpp"
#include "util/rng.hpp"

namespace rvaas::hsa {

enum class Trit : std::uint8_t { Zero = 1, One = 2, Any = 3 };

class Wildcard {
 public:
  static constexpr std::size_t kBits = sdn::kHeaderBits;
  static constexpr std::size_t kWords = (2 * kBits + 63) / 64;

  /// Raw ternary words of one or more cubes OR-ed together. Not a cube
  /// itself — used as a cheap necessary-condition summary: a cube can only
  /// be a subset of SOME cube in a set if it is word-subset of the set's
  /// OR-mask (see subset_of_mask).
  using WordMask = std::array<std::uint64_t, kWords>;

  /// All-x cube (the full header space).
  Wildcard();

  static Wildcard all() { return Wildcard(); }

  /// Exact cube for a concrete header.
  static Wildcard encode(const sdn::HeaderFields& h);

  /// true iff some bit position is contradictory (00).
  bool is_empty() const;

  Trit get_bit(std::size_t i) const;
  void set_bit(std::size_t i, Trit t);

  /// Constrains a whole field to an exact value.
  void set_field(sdn::Field f, std::uint64_t value);
  /// Constrains the bits of `f` selected by `mask` to the bits of `value`
  /// (mask bit j refers to value bit j; j = 0 is the field's LSB).
  void set_field_masked(sdn::Field f, std::uint64_t value, std::uint64_t mask);

  /// Bitwise intersection; may be empty.
  Wildcard intersect(const Wildcard& other) const;
  bool intersects(const Wildcard& other) const {
    return !intersect(other).is_empty();
  }

  /// true iff every header in *this is also in `other`.
  bool subset_of(const Wildcard& other) const;

  /// OR this cube's ternary words into `acc`.
  void or_into(WordMask& acc) const;

  /// Word-level subset test against an OR-mask of several cubes. If this
  /// returns false, *this is a subset of none of the cubes the mask
  /// summarizes (if it returns true nothing is implied) — the O(1) prepass
  /// that lets diff-list emptiness checks skip O(diffs) subset scans.
  bool subset_of_mask(const WordMask& acc) const;

  /// Subset test restricted to the bit positions selected by `mask`:
  /// true iff this cube's trit at every masked position is contained in
  /// `other`'s. The exactness test behind lazy rewrite (HeaderSpace::rewrite
  /// keeps a diff lazy iff the base's rewritten-bit range is inside the
  /// diff's — see the derivation there).
  bool subset_within(const Wildcard& other, const WordMask& mask) const;

  /// If *this and `other` cover, together, a set expressible as ONE cube —
  /// one contains the other, or they differ in exactly one bit position
  /// (where the merged cube takes the trit-wise union) — returns that
  /// cube. The canonical-form primitive behind insert_canonical().
  /// Precondition: neither cube is empty.
  std::optional<Wildcard> merge_with(const Wildcard& other) const;

  bool operator==(const Wildcard&) const = default;

  /// FNV-1a over the ternary words; the hash ingredient of
  /// HeaderSpace::fingerprint() (cache keys re-check exact equality, so a
  /// collision only costs a compare).
  std::uint64_t hash_value() const;

  /// true iff the concrete header lies in this cube.
  bool contains(const sdn::HeaderFields& h) const;

  /// A concrete header from this cube (random choice for x bits).
  /// Precondition: !is_empty().
  sdn::HeaderFields sample(util::Rng& rng) const;

  /// Number of x (free) bits; the cube covers 2^free_bits() headers.
  std::size_t free_bits() const;

  /// Field-structured human-readable form, e.g. "vlan=005 ip_dst=0a00xxxx".
  std::string to_string() const;

  /// Raw ternary string of a single field (MSB first).
  std::string field_to_string(sdn::Field f) const;

 private:
  friend std::vector<Wildcard> cube_subtract(const Wildcard& a,
                                             const Wildcard& b);

  // Header bit i lives at 2-bit offset 2i: word (2i)/64, shift (2i)%64.
  std::array<std::uint64_t, kWords> words_;
};

/// A header rewrite: bits selected by the mask are forced to the value
/// (models SetField / PushVlan / PopVlan action effects on header spaces).
class Rewrite {
 public:
  Rewrite() = default;

  /// Adds a whole-field overwrite.
  void set_field(sdn::Field f, std::uint64_t value);

  bool identity() const { return fields_ == 0; }

  /// Applies to a plain cube: overwritten bits become exact.
  Wildcard apply(const Wildcard& w) const;
  /// Applies to a concrete header.
  sdn::HeaderFields apply(const sdn::HeaderFields& h) const;

  /// true iff the rewrite touches field f.
  bool touches(sdn::Field f) const;

  /// Ternary-word mask with both bits set at every bit position of every
  /// overwritten field (and zero elsewhere) — the rewritten-bit selector
  /// for Wildcard::subset_within.
  Wildcard::WordMask bit_mask() const;

  bool operator==(const Rewrite&) const = default;

 private:
  std::uint32_t fields_ = 0;  // bitmask over Field indices
  std::array<std::uint64_t, sdn::kFieldCount> values_{};
};

/// Cube difference A \ B as a union of (possibly overlapping) cubes.
/// Size is at most the number of constrained bits in B.
std::vector<Wildcard> cube_subtract(const Wildcard& a, const Wildcard& b);

/// Inserts `w` into a canonical cube list: drops it when an existing cube
/// contains it, drops existing cubes it contains, and merges one-position
/// neighbours (via merge_with) to a fixpoint. The result denotes exactly
/// the old union plus `w`, and is a deterministic function of the
/// insertion sequence — callers that replay the same computation get the
/// same list, which is what keeps canonicalized HeaderSpaces usable as
/// structural cache keys. Precondition: `w` and every listed cube are
/// non-empty.
void insert_canonical(std::vector<Wildcard>& cubes, Wildcard w);

}  // namespace rvaas::hsa
