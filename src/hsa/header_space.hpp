#pragma once
// A HeaderSpace is a union of cubes, each with a lazy difference list:
//   HS = ⋃_k ( base_k \ ⋃_j diff_{k,j} )
// Differences accumulate cheaply during rule shadowing and are resolved only
// for emptiness checks, sampling and counting (standard HSA technique).

#include <vector>

#include "hsa/wildcard.hpp"

namespace rvaas::hsa {

struct Cube {
  Wildcard base;
  std::vector<Wildcard> diffs;

  bool is_empty() const;

  /// Structural (not semantic) equality: same base, same diff list.
  bool operator==(const Cube&) const = default;
};

class HeaderSpace {
 public:
  /// Empty space.
  HeaderSpace() = default;

  static HeaderSpace all() { return HeaderSpace(Wildcard::all()); }
  explicit HeaderSpace(Wildcard cube);

  bool is_empty() const;

  HeaderSpace intersect(const Wildcard& w) const;
  HeaderSpace intersect(const HeaderSpace& other) const;

  /// Removes a cube from this space (appends to diff lists).
  HeaderSpace subtract(const Wildcard& w) const;

  /// Union (cube lists concatenate; no canonicalization).
  HeaderSpace union_with(const HeaderSpace& other) const;

  bool contains(const sdn::HeaderFields& h) const;

  /// Rewrites the space under a field overwrite. Internally resolves to
  /// plain cubes first (diffs do not survive projection).
  HeaderSpace rewrite(const Rewrite& rw) const;

  /// Flattens to plain (diff-free, possibly overlapping) cubes.
  std::vector<Wildcard> resolve() const;

  /// A concrete header from the space, if non-empty.
  std::optional<sdn::HeaderFields> sample(util::Rng& rng) const;

  /// Drops empty cubes and cubes subsumed by diff-free siblings.
  void compact();

  /// Structural equality of the cube lists. Two spaces built by the same
  /// deterministic computation compare equal; semantically equal spaces with
  /// different cube structure do not (sufficient for cache keys, which only
  /// need "same query" to collide).
  bool operator==(const HeaderSpace&) const = default;

  /// Order-sensitive structural hash of the cube list, the cheap half of a
  /// cache key (ReachCache re-checks operator== on fingerprint matches).
  std::uint64_t fingerprint() const;

  const std::vector<Cube>& cubes() const { return cubes_; }
  std::size_t cube_count() const { return cubes_.size(); }
  std::size_t diff_count() const;

  std::string to_string() const;

 private:
  std::vector<Cube> cubes_;
};

}  // namespace rvaas::hsa
