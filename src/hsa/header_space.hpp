#pragma once
// A HeaderSpace is a union of cubes, each with a lazy difference list:
//   HS = ⋃_k ( base_k \ ⋃_j diff_{k,j} )
// Differences accumulate cheaply during rule shadowing and are resolved only
// for emptiness checks, sampling and counting (standard HSA technique).
//
// The representation is kept CANONICAL enough to survive adversarial rule
// mixes (the PR 5 fuzzer's cube-blowup wall — see docs/ARCHITECTURE.md,
// "The HeaderSpace representation"):
//   - diffs are clipped to their cube's base, and a cube fully shadowed by
//     a subtraction is dropped instead of carrying a dead diff;
//   - a diff list is LAZY only up to kMaxLazyDiffs entries; past that the
//     cube is materialized into plain (diff-free) cubes, so emptiness never
//     re-proves an ever-deeper recursion;
//   - plain cubes produced by subtract/rewrite/compact are merged through
//     insert_canonical (subset absorption both ways + one-position merge);
//   - per-cube emptiness is memoized (diff lists only grow via subtract,
//     and a cube that went empty stays empty).
// Canonicalization is a deterministic function of the operation sequence,
// so structural operator==/fingerprint() below remain valid cache keys:
// identical queries still collide (ReachCache / CompiledModelCache).

#include <vector>

#include "hsa/wildcard.hpp"

namespace rvaas::hsa {

struct Cube {
  Wildcard base;
  std::vector<Wildcard> diffs;

  /// Memoized: O(1) after the first call until note_diff_appended().
  bool is_empty() const;

  /// Structural (not semantic) equality: same base, same diff list. The
  /// emptiness memo is excluded — it is derived state.
  bool operator==(const Cube& other) const {
    return base == other.base && diffs == other.diffs;
  }

  /// Keeps the emptiness memo sound after a diff was pushed onto `diffs`:
  /// an empty cube stays empty under further subtraction; a non-empty one
  /// must be re-proven.
  void note_diff_appended() {
    if (empty_memo_ == 0) empty_memo_ = -1;
  }

  // -1 unknown, 0 non-empty, 1 empty. Mutable: is_empty() is semantically
  // const. Default-initialized so aggregate construction stays valid.
  mutable std::int8_t empty_memo_ = -1;
};

class HeaderSpace {
 public:
  /// Laziness bound: subtract() materializes a cube into plain cubes once
  /// its diff list would exceed this many entries. Small enough that
  /// covered()'s split recursion stays shallow, large enough that the
  /// common shadowing chains never materialize at all.
  static constexpr std::size_t kMaxLazyDiffs = 12;

  /// Materialization bail-out: if flattening base \ diffs would exceed this
  /// many plain cubes at any intermediate level, subtract() keeps the lazy
  /// form instead (for adversarial diff mixes the lazy form IS the compact
  /// representation; memoized emptiness keeps the longer list affordable).
  static constexpr std::size_t kMaxMaterializeCubes = 96;

  /// Empty space.
  HeaderSpace() = default;

  static HeaderSpace all() { return HeaderSpace(Wildcard::all()); }
  explicit HeaderSpace(Wildcard cube);

  bool is_empty() const;

  HeaderSpace intersect(const Wildcard& w) const;
  HeaderSpace intersect(const HeaderSpace& other) const;

  /// Removes a cube from this space. Cubes fully inside `w` are dropped,
  /// disjoint cubes pass through untouched, overlapping cubes get `w`
  /// clipped to their base appended as a lazy diff — unless the diff list
  /// would pass kMaxLazyDiffs, in which case the cube is materialized into
  /// canonical plain cubes instead.
  HeaderSpace subtract(const Wildcard& w) const;

  /// Union (cube lists concatenate; no canonicalization).
  HeaderSpace union_with(const HeaderSpace& other) const;

  bool contains(const sdn::HeaderFields& h) const;

  /// Rewrites the space under a field overwrite. Cubes whose every diff
  /// contains the base's rewritten-bit range stay LAZY — base and diffs are
  /// rewritten in place, which is exact (see the derivation in the .cpp)
  /// and avoids flattening through the transfer chain. Only cubes with a
  /// diff that genuinely cuts the rewritten bits are materialized; their
  /// images are compacted through insert_canonical.
  HeaderSpace rewrite(const Rewrite& rw) const;

  /// Flattens to plain diff-free cubes, merged canonically (the cubes may
  /// still overlap pairwise where no single-cube union exists).
  std::vector<Wildcard> resolve() const;

  /// Budgeted flatten for dominance bookkeeping: like resolve(), but a cube
  /// whose materialization would exceed `max_cubes` intermediate cubes is
  /// SKIPPED, making the result an under-approximation of the space. Sound
  /// wherever missing cubes only cost repeated work (BFS visited sets), not
  /// correctness.
  std::vector<Wildcard> resolve_within(std::size_t max_cubes) const;

  /// A concrete header from the space, if non-empty.
  std::optional<sdn::HeaderFields> sample(util::Rng& rng) const;

  /// Canonicalizes the cube list: drops empty cubes, merges plain cubes
  /// through insert_canonical, and drops diff-carrying cubes whose base is
  /// subsumed by a plain sibling. Plain cubes come first in the result.
  void compact();

  /// Structural equality of the cube lists. Two spaces built by the same
  /// deterministic computation compare equal; semantically equal spaces with
  /// different cube structure do not (sufficient for cache keys, which only
  /// need "same query" to collide).
  bool operator==(const HeaderSpace&) const = default;

  /// Order-sensitive structural hash of the cube list, the cheap half of a
  /// cache key (ReachCache re-checks operator== on fingerprint matches).
  std::uint64_t fingerprint() const;

  const std::vector<Cube>& cubes() const { return cubes_; }
  std::size_t cube_count() const { return cubes_.size(); }
  std::size_t diff_count() const;

  std::string to_string() const;

 private:
  std::vector<Cube> cubes_;
};

}  // namespace rvaas::hsa
