#include "hsa/header_space.hpp"

#include <sstream>

#include "util/fnv.hpp"

namespace rvaas::hsa {

namespace {

/// Recursive emptiness of base \ (diffs[idx..]). Splits on the first
/// overlapping diff. Two prunings keep the recursion from exploding on the
/// long diff lists rule shadowing produces: a diff that contains the whole
/// base settles the question without splitting, and disjoint diffs are
/// skipped without copying pieces.
bool covered(const Wildcard& base, const std::vector<Wildcard>& diffs,
             std::size_t idx) {
  if (base.is_empty()) return true;
  for (std::size_t j = idx; j < diffs.size(); ++j) {
    if (base.subset_of(diffs[j])) return true;
  }
  while (idx < diffs.size() && !base.intersects(diffs[idx])) ++idx;
  if (idx == diffs.size()) return false;
  // base \ diffs = ⋃ pieces(base \ diffs[idx]) \ diffs[idx+1..]
  for (const Wildcard& piece : cube_subtract(base, diffs[idx])) {
    if (!covered(piece, diffs, idx + 1)) return false;
  }
  return true;
}

/// Flattens base \ diffs into plain cubes.
void resolve_cube(const Wildcard& base, const std::vector<Wildcard>& diffs,
                  std::size_t idx, std::vector<Wildcard>& out) {
  if (base.is_empty()) return;
  while (idx < diffs.size() && !base.intersects(diffs[idx])) ++idx;
  if (idx == diffs.size()) {
    out.push_back(base);
    return;
  }
  if (base.subset_of(diffs[idx])) return;  // nothing of base survives
  for (const Wildcard& piece : cube_subtract(base, diffs[idx])) {
    resolve_cube(piece, diffs, idx + 1, out);
  }
}

}  // namespace

bool Cube::is_empty() const { return covered(base, diffs, 0); }

HeaderSpace::HeaderSpace(Wildcard cube) {
  if (!cube.is_empty()) cubes_.push_back(Cube{std::move(cube), {}});
}

bool HeaderSpace::is_empty() const {
  for (const Cube& c : cubes_) {
    if (!c.is_empty()) return false;
  }
  return true;
}

HeaderSpace HeaderSpace::intersect(const Wildcard& w) const {
  HeaderSpace out;
  for (const Cube& c : cubes_) {
    Wildcard base = c.base.intersect(w);
    if (base.is_empty()) continue;
    Cube nc{std::move(base), {}};
    for (const Wildcard& d : c.diffs) {
      // Keep only diffs that still overlap the narrowed base.
      if (nc.base.intersects(d)) nc.diffs.push_back(d);
    }
    out.cubes_.push_back(std::move(nc));
  }
  return out;
}

HeaderSpace HeaderSpace::intersect(const HeaderSpace& other) const {
  HeaderSpace out;
  for (const Cube& a : cubes_) {
    for (const Cube& b : other.cubes_) {
      Wildcard base = a.base.intersect(b.base);
      if (base.is_empty()) continue;
      Cube nc{std::move(base), {}};
      for (const Wildcard& d : a.diffs) {
        if (nc.base.intersects(d)) nc.diffs.push_back(d);
      }
      for (const Wildcard& d : b.diffs) {
        if (nc.base.intersects(d)) nc.diffs.push_back(d);
      }
      out.cubes_.push_back(std::move(nc));
    }
  }
  return out;
}

HeaderSpace HeaderSpace::subtract(const Wildcard& w) const {
  HeaderSpace out;
  for (const Cube& c : cubes_) {
    Cube nc = c;
    if (nc.base.intersects(w)) nc.diffs.push_back(w);
    out.cubes_.push_back(std::move(nc));
  }
  return out;
}

HeaderSpace HeaderSpace::union_with(const HeaderSpace& other) const {
  HeaderSpace out = *this;
  out.cubes_.insert(out.cubes_.end(), other.cubes_.begin(),
                    other.cubes_.end());
  return out;
}

bool HeaderSpace::contains(const sdn::HeaderFields& h) const {
  for (const Cube& c : cubes_) {
    if (!c.base.contains(h)) continue;
    bool excluded = false;
    for (const Wildcard& d : c.diffs) {
      if (d.contains(h)) {
        excluded = true;
        break;
      }
    }
    if (!excluded) return true;
  }
  return false;
}

HeaderSpace HeaderSpace::rewrite(const Rewrite& rw) const {
  if (rw.identity()) return *this;
  HeaderSpace out;
  for (const Wildcard& plain : resolve()) {
    Wildcard image = rw.apply(plain);
    if (!image.is_empty()) out.cubes_.push_back(Cube{std::move(image), {}});
  }
  return out;
}

std::vector<Wildcard> HeaderSpace::resolve() const {
  std::vector<Wildcard> out;
  for (const Cube& c : cubes_) resolve_cube(c.base, c.diffs, 0, out);
  return out;
}

std::optional<sdn::HeaderFields> HeaderSpace::sample(util::Rng& rng) const {
  const std::vector<Wildcard> plain = resolve();
  if (plain.empty()) return std::nullopt;
  return rng.pick(plain).sample(rng);
}

void HeaderSpace::compact() {
  // Pass 1: drop empty cubes.
  std::vector<Cube> nonempty;
  nonempty.reserve(cubes_.size());
  for (Cube& c : cubes_) {
    if (!c.is_empty()) nonempty.push_back(std::move(c));
  }
  // Pass 2: drop cubes subsumed by a *diff-free* sibling. Ties (equal bases)
  // keep the earlier cube. Only diff-free cubes can subsume, so collect the
  // candidates once: the common post-shadowing shape (every cube carrying
  // diffs) skips the scan entirely instead of paying O(n^2) subset tests.
  std::vector<std::size_t> plain;
  for (std::size_t j = 0; j < nonempty.size(); ++j) {
    if (nonempty[j].diffs.empty()) plain.push_back(j);
  }
  if (plain.empty()) {
    cubes_ = std::move(nonempty);
    return;
  }
  std::vector<Cube> kept;
  kept.reserve(nonempty.size());
  for (std::size_t i = 0; i < nonempty.size(); ++i) {
    bool subsumed = false;
    for (const std::size_t j : plain) {
      if (i == j) continue;
      if (!nonempty[i].base.subset_of(nonempty[j].base)) continue;
      const bool equal = nonempty[j].base.subset_of(nonempty[i].base) &&
                         nonempty[i].diffs.empty();
      if (!equal || j < i) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(std::move(nonempty[i]));
  }
  cubes_ = std::move(kept);
}

std::uint64_t HeaderSpace::fingerprint() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const Cube& c : cubes_) {
    // Cube delimiter: ({a}, {b}) must not collide with ({a, b}).
    h = util::fnv1a_mix(h, 0x9e3779b97f4a7c15ull);
    h = util::fnv1a_mix(h, c.base.hash_value());
    for (const Wildcard& d : c.diffs) h = util::fnv1a_mix(h, d.hash_value());
  }
  return h;
}

std::size_t HeaderSpace::diff_count() const {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += c.diffs.size();
  return n;
}

std::string HeaderSpace::to_string() const {
  if (cubes_.empty()) return "(empty)";
  std::ostringstream os;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i > 0) os << " ∪ ";
    os << "(" << cubes_[i].base.to_string();
    for (const Wildcard& d : cubes_[i].diffs) {
      os << " \\ " << d.to_string();
    }
    os << ")";
  }
  return os.str();
}

}  // namespace rvaas::hsa
