#include "hsa/header_space.hpp"

#include <limits>
#include <optional>
#include <sstream>

#include "util/fnv.hpp"

namespace rvaas::hsa {

namespace {

/// Recursive emptiness of base \ (diffs[idx..]). Splits on the first
/// overlapping diff. Prunings that keep the recursion from exploding on the
/// long diff lists rule shadowing produces: a diff that contains the whole
/// base settles the question without splitting, disjoint diffs are skipped
/// without copying pieces, and the containment prepass itself is skipped
/// when the suffix OR-mask already rules it out (base ⊆ d for any single d
/// implies base ⊆ OR of the suffix — checking the mask is one word scan
/// instead of O(diffs)).
bool covered(const Wildcard& base, const std::vector<Wildcard>& diffs,
             std::size_t idx, const std::vector<Wildcard::WordMask>& suffix) {
  if (base.is_empty()) return true;
  if (base.subset_of_mask(suffix[idx])) {
    for (std::size_t j = idx; j < diffs.size(); ++j) {
      if (base.subset_of(diffs[j])) return true;
    }
  }
  while (idx < diffs.size() && !base.intersects(diffs[idx])) ++idx;
  if (idx == diffs.size()) return false;
  // base \ diffs = ⋃ pieces(base \ diffs[idx]) \ diffs[idx+1..]
  for (const Wildcard& piece : cube_subtract(base, diffs[idx])) {
    if (!covered(piece, diffs, idx + 1, suffix)) return false;
  }
  return true;
}

/// suffix[i] = OR-mask of diffs[i..] (suffix[size] = all-zero), the cheap
/// per-cube summary covered() uses to short-circuit its subset prepass.
std::vector<Wildcard::WordMask> suffix_masks(
    const std::vector<Wildcard>& diffs) {
  std::vector<Wildcard::WordMask> suffix(diffs.size() + 1);
  suffix.back() = {};
  for (std::size_t i = diffs.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1];
    diffs[i].or_into(suffix[i]);
  }
  return suffix;
}

/// One eager subtraction level: appends canonical(⋃_c (c \ d)) into `next`.
/// Returns false (leaving `next` unspecified) once it outgrows `max_cubes`.
bool eager_subtract_level(const std::vector<Wildcard>& plain,
                          const Wildcard& d, std::size_t max_cubes,
                          std::vector<Wildcard>& next) {
  for (const Wildcard& c : plain) {
    if (!c.intersects(d)) {
      insert_canonical(next, c);
    } else if (!c.subset_of(d)) {
      for (Wildcard& piece : cube_subtract(c, d)) {
        insert_canonical(next, std::move(piece));
      }
    }
    if (next.size() > max_cubes) return false;
  }
  return true;
}

/// Materializes base \ diffs as a canonical plain cube list, or nullopt once
/// any intermediate level exceeds `max_cubes` cubes.
///
/// The diffs are applied one level at a time with canonical merging after
/// each, NOT by recursing over cube_subtract pieces: the recursion
/// enumerates a product of overlapping pieces (branching ~ the diffs'
/// constrained-bit count per level, exponential in the diff count), while
/// level-wise merging keeps each intermediate collapsed before the next
/// diff multiplies it.
std::optional<std::vector<Wildcard>> try_materialize(
    const Wildcard& base, const std::vector<Wildcard>& diffs,
    std::size_t max_cubes) {
  std::vector<Wildcard> plain;
  if (base.is_empty()) return plain;
  plain.push_back(base);
  for (const Wildcard& d : diffs) {
    std::vector<Wildcard> next;
    if (!eager_subtract_level(plain, d, max_cubes, next)) return std::nullopt;
    plain = std::move(next);
    if (plain.empty()) break;
  }
  return plain;
}

}  // namespace

bool Cube::is_empty() const {
  if (empty_memo_ >= 0) return empty_memo_ == 1;
  bool empty;
  if (diffs.empty()) {
    empty = base.is_empty();
  } else {
    empty = covered(base, diffs, 0, suffix_masks(diffs));
  }
  empty_memo_ = empty ? 1 : 0;
  return empty;
}

HeaderSpace::HeaderSpace(Wildcard cube) {
  if (!cube.is_empty()) cubes_.push_back(Cube{std::move(cube), {}});
}

bool HeaderSpace::is_empty() const {
  for (const Cube& c : cubes_) {
    if (!c.is_empty()) return false;
  }
  return true;
}

HeaderSpace HeaderSpace::intersect(const Wildcard& w) const {
  HeaderSpace out;
  for (const Cube& c : cubes_) {
    Wildcard base = c.base.intersect(w);
    if (base.is_empty()) continue;
    Cube nc{std::move(base), {}};
    for (const Wildcard& d : c.diffs) {
      // Keep only diffs that still overlap the narrowed base, clipped to it.
      Wildcard clipped = nc.base.intersect(d);
      if (!clipped.is_empty()) nc.diffs.push_back(std::move(clipped));
    }
    out.cubes_.push_back(std::move(nc));
  }
  return out;
}

HeaderSpace HeaderSpace::intersect(const HeaderSpace& other) const {
  HeaderSpace out;
  for (const Cube& a : cubes_) {
    for (const Cube& b : other.cubes_) {
      Wildcard base = a.base.intersect(b.base);
      if (base.is_empty()) continue;
      Cube nc{std::move(base), {}};
      for (const Wildcard& d : a.diffs) {
        Wildcard clipped = nc.base.intersect(d);
        if (!clipped.is_empty()) nc.diffs.push_back(std::move(clipped));
      }
      for (const Wildcard& d : b.diffs) {
        Wildcard clipped = nc.base.intersect(d);
        if (!clipped.is_empty()) nc.diffs.push_back(std::move(clipped));
      }
      out.cubes_.push_back(std::move(nc));
    }
  }
  return out;
}

HeaderSpace HeaderSpace::subtract(const Wildcard& w) const {
  HeaderSpace out;
  out.cubes_.reserve(cubes_.size());
  for (const Cube& c : cubes_) {
    // A full-shadow subtraction removes the cube outright — growing its
    // diff list would only make later emptiness proofs re-derive this.
    if (c.base.subset_of(w)) continue;
    Wildcard clipped = c.base.intersect(w);
    if (clipped.is_empty()) {  // disjoint: the cube is untouched
      out.cubes_.push_back(c);
      continue;
    }
    Cube nc = c;
    nc.diffs.push_back(std::move(clipped));
    nc.note_diff_appended();
    if (nc.diffs.size() > kMaxLazyDiffs) {
      // Bounded laziness: flatten base \ diffs into canonical plain cubes
      // instead of letting covered() re-prove an ever-deeper recursion on
      // every is_empty() from here on. When the flattened form itself would
      // blow up (the diffs shatter the base into more than
      // kMaxMaterializeCubes pieces), the lazy form IS the compact one —
      // keep it and let the memoized emptiness carry the longer list.
      if (auto plains =
              try_materialize(nc.base, nc.diffs, kMaxMaterializeCubes)) {
        for (Wildcard& p : *plains) {
          out.cubes_.push_back(Cube{std::move(p), {}});
        }
        continue;
      }
    }
    out.cubes_.push_back(std::move(nc));
  }
  return out;
}

HeaderSpace HeaderSpace::union_with(const HeaderSpace& other) const {
  HeaderSpace out = *this;
  out.cubes_.insert(out.cubes_.end(), other.cubes_.begin(),
                    other.cubes_.end());
  return out;
}

bool HeaderSpace::contains(const sdn::HeaderFields& h) const {
  for (const Cube& c : cubes_) {
    if (!c.base.contains(h)) continue;
    bool excluded = false;
    for (const Wildcard& d : c.diffs) {
      if (d.contains(h)) {
        excluded = true;
        break;
      }
    }
    if (!excluded) return true;
  }
  return false;
}

HeaderSpace HeaderSpace::rewrite(const Rewrite& rw) const {
  if (rw.identity()) return *this;
  // Lazy-exactness test, per cube. Write R for the rewritten bit positions
  // and N for the rest; rw forces R to constants and z ∈ rw(base) is
  // excluded from rw(base \ ⋃d) iff d covers base's whole R-range at z's
  // N-bits. When every diff satisfies base|R ⊆ d|R, that coverage is
  // per-diff all-or-nothing, and rw(base \ ⋃d) = rw(base) \ ⋃ rw(d)
  // EXACTLY — the cube is rewritten in place without flattening. A diff
  // that genuinely cuts R (base|R ⊄ d|R) breaks the identity, so such
  // cubes are materialized and rewritten plain-cube-wise.
  const Wildcard::WordMask rw_bits = rw.bit_mask();
  HeaderSpace out;
  std::vector<Wildcard> image;
  for (const Cube& c : cubes_) {
    if (c.is_empty()) continue;
    if (c.diffs.empty()) {  // plain cube: image is plain, merge it below
      insert_canonical(image, rw.apply(c.base));
      continue;
    }
    bool lazy_exact = true;
    for (const Wildcard& d : c.diffs) {
      if (!c.base.subset_within(d, rw_bits)) {
        lazy_exact = false;
        break;
      }
    }
    if (lazy_exact) {
      Cube nc{rw.apply(c.base), {}};
      nc.diffs.reserve(c.diffs.size());
      for (const Wildcard& d : c.diffs) nc.diffs.push_back(rw.apply(d));
      nc.empty_memo_ = 0;  // exactness: non-empty preimage → non-empty image
      out.cubes_.push_back(std::move(nc));
      continue;
    }
    // Overwriting bits can map previously-distinct cubes onto overlapping
    // or duplicate images; canonical insertion collapses them so
    // rewrite-heavy transfer chains don't multiply cube counts downstream.
    auto plains = try_materialize(c.base, c.diffs,
                                  std::numeric_limits<std::size_t>::max());
    for (const Wildcard& plain : *plains) {
      Wildcard img = rw.apply(plain);
      if (!img.is_empty()) insert_canonical(image, std::move(img));
    }
  }
  out.cubes_.reserve(out.cubes_.size() + image.size());
  for (Wildcard& img : image) {
    out.cubes_.push_back(Cube{std::move(img), {}});
  }
  return out;
}

std::vector<Wildcard> HeaderSpace::resolve() const {
  std::vector<Wildcard> out;
  for (const Cube& c : cubes_) {
    if (c.is_empty()) continue;  // memoized skip
    // No budget here: resolve() must produce plain cubes. Level-wise eager
    // subtraction with canonical merging keeps the expansion tame even for
    // diff lists that subtract() declined to materialize.
    auto plains = try_materialize(
        c.base, c.diffs, std::numeric_limits<std::size_t>::max());
    for (Wildcard& w : *plains) insert_canonical(out, std::move(w));
  }
  return out;
}

std::vector<Wildcard> HeaderSpace::resolve_within(std::size_t max_cubes) const {
  std::vector<Wildcard> out;
  for (const Cube& c : cubes_) {
    if (c.is_empty()) continue;
    if (auto plains = try_materialize(c.base, c.diffs, max_cubes)) {
      for (Wildcard& w : *plains) insert_canonical(out, std::move(w));
    }
  }
  return out;
}

std::optional<sdn::HeaderFields> HeaderSpace::sample(util::Rng& rng) const {
  const std::vector<Wildcard> plain = resolve();
  if (plain.empty()) return std::nullopt;
  return rng.pick(plain).sample(rng);
}

void HeaderSpace::compact() {
  // Plain cubes merge canonically; diff-carrying cubes survive unless a
  // plain sibling subsumes their whole base (their own diffs only shrink
  // them further). Equal-structure inputs canonicalize identically, so
  // compact() is safe on cache-key material.
  std::vector<Wildcard> plain;
  std::vector<Cube> diffy;
  for (Cube& c : cubes_) {
    if (c.is_empty()) continue;
    if (c.diffs.empty()) {
      insert_canonical(plain, std::move(c.base));
    } else {
      diffy.push_back(std::move(c));
    }
  }
  cubes_.clear();
  cubes_.reserve(plain.size() + diffy.size());
  for (Wildcard& p : plain) cubes_.push_back(Cube{std::move(p), {}});
  for (Cube& c : diffy) {
    bool subsumed = false;
    for (std::size_t j = 0; j < plain.size() && !subsumed; ++j) {
      subsumed = c.base.subset_of(cubes_[j].base);
    }
    if (!subsumed) cubes_.push_back(std::move(c));
  }
}

std::uint64_t HeaderSpace::fingerprint() const {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const Cube& c : cubes_) {
    // Cube delimiter: ({a}, {b}) must not collide with ({a, b}).
    h = util::fnv1a_mix(h, 0x9e3779b97f4a7c15ull);
    h = util::fnv1a_mix(h, c.base.hash_value());
    for (const Wildcard& d : c.diffs) h = util::fnv1a_mix(h, d.hash_value());
  }
  return h;
}

std::size_t HeaderSpace::diff_count() const {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += c.diffs.size();
  return n;
}

std::string HeaderSpace::to_string() const {
  if (cubes_.empty()) return "(empty)";
  std::ostringstream os;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    if (i > 0) os << " ∪ ";
    os << "(" << cubes_[i].base.to_string();
    for (const Wildcard& d : cubes_[i].diffs) {
      os << " \\ " << d.to_string();
    }
    os << ")";
  }
  return os.str();
}

}  // namespace rvaas::hsa
