#pragma once
// Simulated trusted-execution environment (stands in for Intel SGX; see
// DESIGN.md §2). Models exactly the properties the paper relies on:
//
//  * Measurement: a stable hash of the code identity, so a relying party can
//    tell *which* program is running ("the provider makes sure that the
//    correct RVaaS application is operating on the server, and not a fake
//    one", §IV.A).
//  * Sealed storage: data bound to a measurement; a different program (or a
//    tampered one) cannot unseal it.
//
// Attestation quotes over measurements live in enclave/attestation.hpp.

#include <optional>
#include <string>
#include <string_view>

#include "crypto/seal.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sign.hpp"
#include "util/bytes.hpp"

namespace rvaas::enclave {

/// SHA-256 of the enclave's code identity (name + version + build salt).
using Measurement = crypto::Digest32;

Measurement measure_code(std::string_view name, std::string_view version);

/// A simulated enclave instance: code identity plus an in-enclave signing key
/// whose public half is bound to the measurement through attestation.
class Enclave {
 public:
  Enclave(std::string name, std::string version, util::Rng& rng);

  const std::string& name() const { return name_; }
  const std::string& version() const { return version_; }
  const Measurement& measurement() const { return measurement_; }

  /// Public signing identity of this enclave instance.
  const crypto::VerifyKey& verify_key() const { return key_.verify_key(); }
  /// Public DH element for sealing messages *to* the enclave.
  const crypto::BigUInt& box_public() const { return box_.public_element(); }

  /// Signs with the in-enclave key (only enclave code can reach this).
  crypto::Signature sign(std::span<const std::uint8_t> message) const {
    return key_.sign(message);
  }

  /// Opens a box sealed to this enclave's public element.
  std::optional<util::Bytes> open(const crypto::SealedBox& box) const {
    return box_.open(box);
  }

 private:
  std::string name_;
  std::string version_;
  Measurement measurement_;
  crypto::SigningKey key_;
  crypto::BoxOpener box_;
};

/// Measurement-bound sealed storage (simulates SGX sealing to MRENCLAVE).
/// The platform secret models the CPU fuse key: common to the machine,
/// inaccessible to software.
class SealedStorage {
 public:
  explicit SealedStorage(util::Bytes platform_secret)
      : platform_secret_(std::move(platform_secret)) {}

  util::Bytes seal(const Measurement& m, std::span<const std::uint8_t> data) const;

  /// Returns nullopt if `m` differs from the sealing measurement or the blob
  /// was tampered with.
  std::optional<util::Bytes> unseal(const Measurement& m,
                                    std::span<const std::uint8_t> blob) const;

 private:
  util::Bytes sealing_key(const Measurement& m) const;

  util::Bytes platform_secret_;
};

}  // namespace rvaas::enclave
