#include "enclave/enclave.hpp"

#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"

namespace rvaas::enclave {

Measurement measure_code(std::string_view name, std::string_view version) {
  return crypto::Sha256()
      .update("rvaas-enclave-measurement-v1|")
      .update(name)
      .update("|")
      .update(version)
      .finalize();
}

Enclave::Enclave(std::string name, std::string version, util::Rng& rng)
    : name_(std::move(name)),
      version_(std::move(version)),
      measurement_(measure_code(name_, version_)),
      key_(crypto::SigningKey::generate(rng)),
      box_(crypto::BoxOpener::generate(rng)) {}

util::Bytes SealedStorage::sealing_key(const Measurement& m) const {
  return crypto::digest_bytes(crypto::hmac_sha256(platform_secret_, m));
}

util::Bytes SealedStorage::seal(const Measurement& m,
                                std::span<const std::uint8_t> data) const {
  const util::Bytes key = sealing_key(m);
  const util::Bytes nonce = crypto::digest_bytes(crypto::sha256(data));
  util::ByteWriter w;
  w.put_bytes(nonce);
  w.put_bytes(crypto::xor_stream(key, nonce, data));
  const crypto::Digest32 tag = crypto::hmac_sha256(key, w.data());
  w.put_raw(tag);
  return w.take();
}

std::optional<util::Bytes> SealedStorage::unseal(
    const Measurement& m, std::span<const std::uint8_t> blob) const {
  const util::Bytes key = sealing_key(m);
  try {
    util::ByteReader r(blob);
    const util::Bytes nonce = r.get_bytes();
    const util::Bytes cipher = r.get_bytes();
    const util::Bytes tag = r.get_raw(32);
    r.expect_done();

    util::ByteWriter w;
    w.put_bytes(nonce);
    w.put_bytes(cipher);
    const crypto::Digest32 expect = crypto::hmac_sha256(key, w.data());
    crypto::Digest32 got{};
    std::copy(tag.begin(), tag.end(), got.begin());
    if (!crypto::digest_equal(expect, got)) return std::nullopt;
    return crypto::xor_stream(key, nonce, cipher);
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace rvaas::enclave
