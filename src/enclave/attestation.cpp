#include "enclave/attestation.hpp"

#include "crypto/hmac.hpp"

namespace rvaas::enclave {

util::Bytes Report::serialize() const {
  util::ByteWriter w;
  w.put_raw(measurement);
  w.put_raw(report_data);
  return w.take();
}

util::Bytes Quote::serialize() const {
  util::ByteWriter w;
  w.put_bytes(report.serialize());
  w.put_bytes(signature.serialize());
  return w.take();
}

Quote Quote::deserialize(util::ByteReader& r) {
  Quote q;
  const util::Bytes report_bytes = r.get_bytes();
  util::ByteReader rr(report_bytes);
  const util::Bytes m = rr.get_raw(q.report.measurement.size());
  std::copy(m.begin(), m.end(), q.report.measurement.begin());
  const util::Bytes rd = rr.get_raw(q.report.report_data.size());
  std::copy(rd.begin(), rd.end(), q.report.report_data.begin());
  rr.expect_done();

  const util::Bytes sig_bytes = r.get_bytes();
  util::ByteReader sr(sig_bytes);
  q.signature = crypto::Signature::deserialize(sr);
  return q;
}

Quote AttestationService::quote(const Enclave& enclave,
                                const crypto::Digest32& report_data) const {
  Quote q;
  q.report.measurement = enclave.measurement();
  q.report.report_data = report_data;
  q.signature = key_.sign(q.report.serialize());
  return q;
}

bool AttestationService::verify(const Quote& quote,
                                const crypto::VerifyKey& root,
                                const std::optional<Measurement>& expected) {
  if (!root.verify(quote.report.serialize(), quote.signature)) return false;
  if (expected && !crypto::digest_equal(quote.report.measurement, *expected)) {
    return false;
  }
  return true;
}

crypto::Digest32 bind_keys(const crypto::VerifyKey& vk,
                           const crypto::BigUInt& box_public) {
  return crypto::Sha256()
      .update("rvaas-key-binding-v1")
      .update(vk.serialize())
      .update(box_public.to_bytes())
      .finalize();
}

}  // namespace rvaas::enclave
