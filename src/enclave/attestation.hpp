#pragma once
// Remote attestation: a simulated attestation service (stands in for Intel's
// IAS / DCAP infrastructure) signs quotes binding an enclave's measurement to
// report data (here: the enclave's public keys). Relying parties verify the
// quote chain and compare the measurement against the one they expect.

#include <optional>

#include "enclave/enclave.hpp"

namespace rvaas::enclave {

/// What an enclave asserts about itself: its measurement plus 32 bytes of
/// caller-chosen report data (conventionally a hash of its public keys).
struct Report {
  Measurement measurement{};
  crypto::Digest32 report_data{};

  util::Bytes serialize() const;
};

/// A report countersigned by the attestation service.
struct Quote {
  Report report;
  crypto::Signature signature;

  util::Bytes serialize() const;
  static Quote deserialize(util::ByteReader& r);
};

class AttestationService {
 public:
  explicit AttestationService(util::Rng& rng)
      : key_(crypto::SigningKey::generate(rng)) {}

  /// Public root of trust that relying parties pin.
  const crypto::VerifyKey& root_key() const { return key_.verify_key(); }

  /// Issues a quote for an enclave running on this platform. The service
  /// computes the report itself (the enclave cannot lie about its own
  /// measurement, as in SGX where the CPU produces the report).
  Quote quote(const Enclave& enclave, const crypto::Digest32& report_data) const;

  /// Verifies quote authenticity against `root` and, if given, that the
  /// measurement matches `expected`.
  static bool verify(const Quote& quote, const crypto::VerifyKey& root,
                     const std::optional<Measurement>& expected);

 private:
  crypto::SigningKey key_;
};

/// Convenience: the canonical report data for an enclave — a hash binding its
/// signing and sealing public keys, so a verified quote authenticates both.
crypto::Digest32 bind_keys(const crypto::VerifyKey& vk,
                           const crypto::BigUInt& box_public);

}  // namespace rvaas::enclave
