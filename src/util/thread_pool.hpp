#pragma once
// A small fixed-size worker pool for fanning independent computations out
// across cores. The only primitive is a blocking parallel index loop
// (`parallel_for`): workers pull indices from a shared atomic counter, so
// uneven per-item cost balances automatically. With 0 or 1 threads the loop
// degenerates to an inline sequential run — callers need no special case.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rvaas::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 is allowed: every parallel_for then runs
  /// inline on the calling thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing indices over the
  /// workers, and blocks until all calls returned. The calling thread
  /// participates, so a pool of size T applies T+1 threads of compute. If
  /// any call throws, one of the exceptions is rethrown here after the loop
  /// drains; the remaining indices are still consumed (each worker keeps
  /// pulling, but fn is skipped once a failure is recorded).
  ///
  /// The pool runs one loop at a time: concurrent calls from different
  /// threads are safe but serialize against each other (each still gets the
  /// full pool). Calling parallel_for from inside fn deadlocks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::atomic<std::size_t> next{0};
    std::size_t limit = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> active{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
  };

  void worker_loop();
  static void drain(Job& job);

  std::mutex loop_mu_;  ///< serializes whole parallel_for invocations
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  Job* job_ = nullptr;  // guarded by mu_; non-null while a loop is running
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// One-shot convenience: runs fn(i) for i in [0, n) on up to `threads`
/// threads total (including the caller). threads <= 1 runs inline.
void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace rvaas::util
