#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/ensure.hpp"

namespace rvaas::util {

void Samples::add(double v) {
  values_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::min() const {
  ensure(!values_.empty(), "Samples::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double Samples::max() const {
  ensure(!values_.empty(), "Samples::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double Samples::mean() const {
  ensure(!values_.empty(), "Samples::mean on empty set");
  return sum_ / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  ensure(!values_.empty(), "Samples::stddev on empty set");
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Samples::percentile(double p) const {
  ensure(!values_.empty(), "Samples::percentile on empty set");
  ensure(p >= 0 && p <= 100, "percentile must be in [0, 100]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1 - frac) + sorted_[lo + 1] * frac;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  ensure(row.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace rvaas::util
