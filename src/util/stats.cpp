#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/ensure.hpp"

namespace rvaas::util {

void Samples::add(double v) {
  values_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::min() const {
  ensure(!values_.empty(), "Samples::min on empty set");
  ensure_sorted();
  return sorted_.front();
}

double Samples::max() const {
  ensure(!values_.empty(), "Samples::max on empty set");
  ensure_sorted();
  return sorted_.back();
}

double Samples::mean() const {
  ensure(!values_.empty(), "Samples::mean on empty set");
  return sum_ / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  ensure(!values_.empty(), "Samples::stddev on empty set");
  const double m = mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Samples::percentile(double p) const {
  ensure(!values_.empty(), "Samples::percentile on empty set");
  ensure(p >= 0 && p <= 100, "percentile must be in [0, 100]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1 - frac) + sorted_[lo + 1] * frac;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  ensure(row.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

namespace {

void append_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n  {" : ",\n  {");
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) os << ", ";
      append_json_string(os, header_[c]);
      os << ": ";
      append_json_string(os, rows_[r][c]);
    }
    os << '}';
  }
  os << "\n]";
  return os.str();
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

namespace {

/// Parses "N,M,..." or "N..M" (log-spaced 1x/3x ladder, M inclusive) into
/// an ascending count list; false on malformed input.
bool parse_subs_ladder(const std::string& text,
                       std::vector<std::size_t>* out) {
  const auto parse_count = [](const std::string& s, std::size_t* v) {
    if (s.empty()) return false;
    std::size_t pos = 0;
    unsigned long long raw = 0;
    try {
      raw = std::stoull(s, &pos);
    } catch (...) {
      return false;
    }
    if (pos != s.size() || raw == 0) return false;
    *v = static_cast<std::size_t>(raw);
    return true;
  };

  const auto range_sep = text.find("..");
  if (range_sep != std::string::npos) {
    std::size_t lo = 0, hi = 0;
    if (!parse_count(text.substr(0, range_sep), &lo) ||
        !parse_count(text.substr(range_sep + 2), &hi) || lo > hi) {
      return false;
    }
    // 1-3-10 ladder: 100000..1000000 -> 100000, 300000, 1000000.
    std::size_t v = lo;
    bool times_three = true;
    while (v < hi) {
      out->push_back(v);
      v = times_three ? v * 3 : (v / 3) * 10;
      times_three = !times_three;
    }
    out->push_back(hi);
    return true;
  }

  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, ',')) {
    std::size_t v = 0;
    if (!parse_count(token, &v)) return false;
    if (!out->empty() && v <= out->back()) return false;  // ascending
    out->push_back(v);
  }
  return !out->empty();
}

}  // namespace

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      args.json = argv[++i];
    } else if (arg == "--subs" && i + 1 < argc &&
               parse_subs_ladder(argv[i + 1], &args.subs)) {
      ++i;
    } else if (arg == "--connections" && i + 1 < argc &&
               parse_subs_ladder(argv[i + 1], &args.connections)) {
      ++i;
    } else if (arg == "--io-threads" && i + 1 < argc &&
               parse_subs_ladder(argv[i + 1], &args.io_threads)) {
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json FILE] [--subs N,M,...|N..M] "
                   "[--connections N,M,...|N..M] [--io-threads N,M,...|N..M]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

bool write_json_tables(
    const std::string& path,
    const std::vector<std::pair<std::string, const Table*>>& sections) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs("{\n", f);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::fprintf(f, "\"%s\": %s%s\n", sections[i].first.c_str(),
                 sections[i].second->to_json().c_str(),
                 i + 1 < sections.size() ? "," : "");
  }
  std::fputs("}\n", f);
  // A short write (e.g. disk full) must not masquerade as success — the
  // whole point of the file is a trustworthy CI artifact.
  const bool ok = std::ferror(f) == 0;
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "error writing %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace rvaas::util
