#pragma once
// Deterministic, seedable PRNG (xoshiro256**). All randomness in the library
// flows through explicitly-passed Rng instances; there is no global RNG, so
// every simulation and test is reproducible from its seed.

#include <cstdint>
#include <vector>

#include "util/ensure.hpp"

namespace rvaas::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    ensure(bound > 0, "Rng::below requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return v % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ensure(lo <= hi, "Rng::uniform_int requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform real in [0, 1).
  double uniform_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform_real();
  }

  bool bernoulli(double p) { return uniform_real() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  bool next_bit() { return (next_u64() & 1) != 0; }

  template <class T>
  const T& pick(const std::vector<T>& v) {
    ensure(!v.empty(), "Rng::pick on empty vector");
    return v[below(v.size())];
  }

  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derive an independent child generator (for parallel components).
  Rng fork() { return Rng(next_u64() ^ 0xc0ffee123456789ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace rvaas::util
