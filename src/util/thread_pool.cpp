#include "util/thread_pool.hpp"

namespace rvaas::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::drain(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.limit) return;
    if (job.failed.load(std::memory_order_relaxed)) continue;
    try {
      (*job.fn)(i);
    } catch (...) {
      job.failed.store(true, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t last_seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && job_seq_ != last_seen);
      });
      if (stop_) return;
      job = job_;
      last_seen = job_seq_;
      job->active.fetch_add(1, std::memory_order_relaxed);
    }
    drain(*job);
    std::size_t remaining;
    {
      // Decrement under the lock so the completion wait in parallel_for
      // cannot check the count and go to sleep between our decrement and
      // notify (lost wakeup).
      std::lock_guard<std::mutex> lock(mu_);
      remaining = job->active.fetch_sub(1, std::memory_order_acq_rel) - 1;
    }
    if (remaining == 0) work_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  Job job;
  job.limit = n;
  job.fn = &fn;
  if (workers_.empty() || n == 1) {
    drain(job);
  } else {
    // One loop owns the workers at a time; concurrent callers queue here.
    std::lock_guard<std::mutex> loop_lock(loop_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &job;
      ++job_seq_;
    }
    work_ready_.notify_all();
    drain(job);  // the caller works too
    {
      // Unpublish the job, then wait for workers that picked it up.
      std::unique_lock<std::mutex> lock(mu_);
      job_ = nullptr;
      work_done_.wait(lock, [&] {
        return job.active.load(std::memory_order_acquire) == 0;
      });
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

void parallel_for(std::size_t threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads - 1);
  pool.parallel_for(n, fn);
}

}  // namespace rvaas::util
