#pragma once
// Invariant / precondition checking helpers. Violations are programming
// errors, reported as exceptions so tests can observe them.

#include <source_location>
#include <stdexcept>
#include <string>

namespace rvaas::util {

/// Thrown when an internal invariant or a caller precondition is violated.
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Checks a precondition/invariant; throws InvariantViolation when violated.
inline void ensure(bool condition, const std::string& message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw InvariantViolation(std::string(loc.file_name()) + ":" +
                             std::to_string(loc.line()) + ": " + message);
  }
}

[[noreturn]] inline void unreachable(
    const std::string& message,
    std::source_location loc = std::source_location::current()) {
  throw InvariantViolation(std::string(loc.file_name()) + ":" +
                           std::to_string(loc.line()) + ": unreachable: " + message);
}

}  // namespace rvaas::util
