#pragma once
// Byte buffer plus bounds-checked little-endian serialization helpers, used
// by the crypto layer and the in-band wire protocol.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/ensure.hpp"

namespace rvaas::util {

using Bytes = std::vector<std::uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(std::span<const std::uint8_t> b) {
  return std::string(b.begin(), b.end());
}

/// Append-only serializer (little-endian fixed-width integers, length-prefixed
/// byte strings).
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(v); }

  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v));
    put_u8(static_cast<std::uint8_t>(v >> 8));
  }

  void put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v));
    put_u16(static_cast<std::uint16_t>(v >> 16));
  }

  void put_u64(std::uint64_t v) {
    put_u32(static_cast<std::uint32_t>(v));
    put_u32(static_cast<std::uint32_t>(v >> 32));
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_raw(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }

  /// Length-prefixed (u32) byte string.
  void put_bytes(std::span<const std::uint8_t> b) {
    put_u32(static_cast<std::uint32_t>(b.size()));
    put_raw(b);
  }

  void put_string(std::string_view s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Thrown on malformed input (truncated buffers, bad tags). Distinct from
/// InvariantViolation: decoding errors are expected-at-runtime events.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bounds-checked deserializer matching ByteWriter's format.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Owning overload: keeps rvalue buffers alive for the reader's lifetime
  /// (prevents dangling spans in `ByteReader r(msg.serialize())`).
  explicit ByteReader(Bytes&& data)
      : owned_(std::move(data)), data_(owned_) {}

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t get_u16() {
    const auto lo = get_u8();
    const auto hi = get_u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }

  std::uint32_t get_u32() {
    const std::uint32_t lo = get_u16();
    const std::uint32_t hi = get_u16();
    return lo | (hi << 16);
  }

  std::uint64_t get_u64() {
    const std::uint64_t lo = get_u32();
    const std::uint64_t hi = get_u32();
    return lo | (hi << 32);
  }

  bool get_bool() { return get_u8() != 0; }

  Bytes get_raw(std::size_t n) {
    need(n);
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  Bytes get_bytes() {
    const auto n = get_u32();
    return get_raw(n);
  }

  std::string get_string() {
    const auto b = get_bytes();
    return to_string(b);
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Requires the buffer to be fully consumed (detects trailing garbage).
  void expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw DecodeError("truncated message");
  }

  Bytes owned_;  // only used by the owning constructor
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace rvaas::util
