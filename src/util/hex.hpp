#pragma once
// Hex encoding/decoding for keys, digests and debug output.

#include <span>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace rvaas::util {

std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (even length, [0-9a-fA-F]); throws DecodeError.
Bytes from_hex(std::string_view hex);

}  // namespace rvaas::util
