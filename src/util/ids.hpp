#pragma once
// Strong ID types. Every entity in the system (switch, port, host, ...) gets
// its own incompatible integer wrapper so that, e.g., a SwitchId can never be
// passed where a HostId is expected.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace rvaas::util {

template <class Tag, class Rep = std::uint32_t>
struct StrongId {
  using rep_type = Rep;

  Rep value{};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  constexpr auto operator<=>(const StrongId&) const = default;
};

template <class Tag, class Rep>
std::ostream& operator<<(std::ostream& os, const StrongId<Tag, Rep>& id) {
  return os << id.value;
}

}  // namespace rvaas::util

template <class Tag, class Rep>
struct std::hash<rvaas::util::StrongId<Tag, Rep>> {
  std::size_t operator()(const rvaas::util::StrongId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
