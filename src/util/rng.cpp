#include "util/rng.hpp"

#include <cmath>

namespace rvaas::util {

double Rng::exponential(double mean) {
  ensure(mean > 0, "Rng::exponential requires mean > 0");
  // Inverse CDF; 1 - uniform_real() is in (0, 1], so log() is finite.
  return -mean * std::log(1.0 - uniform_real());
}

}  // namespace rvaas::util
