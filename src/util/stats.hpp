#pragma once
// Lightweight measurement helpers for the benchmark harnesses: a sample
// accumulator with percentiles and an aligned table printer.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rvaas::util {

/// Accumulates double-valued samples; supports mean/stddev/min/max and
/// percentile queries.
class Samples {
 public:
  void add(double v);

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  double sum() const { return sum_; }
  /// p in [0, 100]; nearest-rank on the sorted samples.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

/// Aligned plain-text table used by benches to print EXPERIMENTS.md rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders with column alignment; includes a separator under the header.
  std::string to_string() const;
  void print() const;

  /// JSON array of row objects keyed by the header (all values as strings) —
  /// the machine-readable form the benches emit under --json for CI
  /// artifacts.
  std::string to_json() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shared CLI of the self-contained bench mains.
struct BenchArgs {
  bool smoke = false;  ///< tiny topology, one iteration (the CI mode)
  std::string json;    ///< --json FILE target; empty = no JSON output
  /// --subs ladder for scaling modes (bench_monitor): subscription counts
  /// to run, ascending. Empty = the bench's built-in default ladder.
  std::vector<std::size_t> subs;
  /// --connections ladder (bench_wire): concurrent wire connections per
  /// run, ascending. Empty = the bench's built-in default ladder.
  std::vector<std::size_t> connections;
  /// --io-threads ladder (bench_wire): front-end I/O thread counts to run,
  /// ascending. Empty = the bench's built-in default ladder.
  std::vector<std::size_t> io_threads;

  /// Parses [--smoke] [--json FILE] [--subs N,M,... | N..M]
  /// [--connections N,M,...|N..M] [--io-threads N,M,...|N..M]; exits with
  /// usage on anything else. `N..M` expands to {N, ~3N, ~10N, ...} up to M
  /// inclusive — a log-spaced ladder like the default 100000..1000000.
  static BenchArgs parse(int argc, char** argv);
};

/// Writes the sections as one JSON object, `{"name": <table-json>, ...}`.
/// Returns false (with a message on stderr) on I/O failure.
bool write_json_tables(
    const std::string& path,
    const std::vector<std::pair<std::string, const Table*>>& sections);

}  // namespace rvaas::util
