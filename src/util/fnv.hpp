#pragma once
// FNV-1a 64-bit hashing, shared by the structural fingerprints (hsa) and
// cache keys (rvaas) so the constants live in exactly one place.

#include <cstdint>

namespace rvaas::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// One FNV-1a absorption step over a 64-bit word.
constexpr std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

}  // namespace rvaas::util
