#include "workload/topo_gen.hpp"

#include "util/ensure.hpp"

namespace rvaas::workload {

using sdn::GeoLocation;
using sdn::HostId;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

const std::vector<std::string>& jurisdiction_palette() {
  static const std::vector<std::string> palette{"DE", "FR", "US", "JP",
                                                "BR", "IN", "ZA", "CA"};
  return palette;
}

namespace {

GeoLocation geo_for(std::size_t region, double lat, double lon) {
  const auto& palette = jurisdiction_palette();
  return GeoLocation{lat, lon, palette[region % palette.size()]};
}

/// Tracks the next free port per switch while wiring a topology.
class PortAllocator {
 public:
  PortRef take(SwitchId sw) { return PortRef{sw, PortNo(next_[sw]++)}; }
  std::uint32_t used(SwitchId sw) const {
    const auto it = next_.find(sw);
    return it == next_.end() ? 0 : it->second;
  }

 private:
  std::map<SwitchId, std::uint32_t> next_;
};

HostId host_for(std::uint32_t index) { return HostId(1000 + index); }

HostId host_for(std::uint32_t base, std::uint32_t index) {
  return HostId(base + index);
}

}  // namespace

GeneratedTopology fat_tree(std::uint32_t k, std::uint32_t hosts_per_edge,
                           std::uint32_t host_base) {
  util::ensure(k >= 2 && k % 2 == 0, "fat-tree requires even k >= 2");
  util::ensure(hosts_per_edge >= 1 && hosts_per_edge <= k / 2,
               "hosts_per_edge must be in [1, k/2]");
  GeneratedTopology out;
  const std::uint32_t half = k / 2;
  const std::uint32_t core_count = half * half;

  // Switch id plan: core [1, core_count], then per pod p:
  // agg = 100 + p*100 + i, edge = 100 + p*100 + 50 + i.
  auto core_id = [](std::uint32_t i) { return SwitchId(1 + i); };
  auto agg_id = [](std::uint32_t pod, std::uint32_t i) {
    return SwitchId(100 + pod * 100 + i);
  };
  auto edge_id = [](std::uint32_t pod, std::uint32_t i) {
    return SwitchId(100 + pod * 100 + 50 + i);
  };

  for (std::uint32_t i = 0; i < core_count; ++i) {
    out.topo.add_switch(core_id(i), k, geo_for(i % half, 0, i));
  }
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t i = 0; i < half; ++i) {
      out.topo.add_switch(agg_id(pod, i), k, geo_for(pod, 1, pod));
      out.topo.add_switch(edge_id(pod, i), k, geo_for(pod, 2, pod));
    }
  }

  PortAllocator ports;
  // Core <-> aggregation: core switch (i, j) connects to aggregation j of
  // every pod.
  for (std::uint32_t j = 0; j < half; ++j) {
    for (std::uint32_t i = 0; i < half; ++i) {
      const SwitchId core = core_id(j * half + i);
      for (std::uint32_t pod = 0; pod < k; ++pod) {
        out.topo.add_link(ports.take(core), ports.take(agg_id(pod, j)));
      }
    }
  }
  // Aggregation <-> edge within each pod (full bipartite).
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t a = 0; a < half; ++a) {
      for (std::uint32_t e = 0; e < half; ++e) {
        out.topo.add_link(ports.take(agg_id(pod, a)),
                          ports.take(edge_id(pod, e)));
      }
    }
  }
  // Hosts on edge switches.
  std::uint32_t host_index = 0;
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t e = 0; e < half; ++e) {
      for (std::uint32_t h = 0; h < hosts_per_edge; ++h) {
        const HostId host = host_for(host_base, host_index++);
        out.topo.attach_host(host, ports.take(edge_id(pod, e)));
        out.hosts.push_back(host);
      }
    }
  }
  return out;
}

void append_linear_segment(sdn::Topology& topo, std::uint32_t base_switch,
                           std::uint32_t count, std::uint32_t base_host,
                           std::vector<HostId>* hosts) {
  util::ensure(count >= 1, "linear topology needs >= 1 switch");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t region = count < 3 ? 0 : (i * 3) / count;  // thirds
    topo.add_switch(SwitchId(base_switch + i), 4,
                    geo_for(region, 0, static_cast<double>(i)));
  }
  for (std::uint32_t i = 0; i + 1 < count; ++i) {
    topo.add_link({SwitchId(base_switch + i), PortNo(1)},
                  {SwitchId(base_switch + i + 1), PortNo(0)});
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const HostId host(base_host + i);
    topo.attach_host(host, {SwitchId(base_switch + i), PortNo(2)});
    if (hosts != nullptr) hosts->push_back(host);
  }
}

GeneratedTopology linear(std::uint32_t n) {
  GeneratedTopology out;
  append_linear_segment(out.topo, 1, n, 1000, &out.hosts);
  return out;
}

GeneratedTopology linear_fanout(std::uint32_t n,
                                std::uint32_t hosts_per_switch) {
  util::ensure(n >= 1, "linear_fanout needs >= 1 switch");
  util::ensure(hosts_per_switch >= 1, "linear_fanout needs >= 1 host/switch");
  GeneratedTopology out;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t region = n < 3 ? 0 : (i * 3) / n;  // thirds
    out.topo.add_switch(SwitchId(1 + i), 2 + hosts_per_switch,
                        geo_for(region, 0, static_cast<double>(i)));
  }
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    out.topo.add_link({SwitchId(1 + i), PortNo(1)},
                      {SwitchId(1 + i + 1), PortNo(0)});
  }
  std::uint32_t host_index = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t h = 0; h < hosts_per_switch; ++h) {
      const HostId host = host_for(host_index++);
      out.topo.attach_host(host, {SwitchId(1 + i), PortNo(2 + h)});
      out.hosts.push_back(host);
    }
  }
  return out;
}

GeneratedTopology ring(std::uint32_t n) {
  util::ensure(n >= 3, "ring topology needs >= 3 switches");
  GeneratedTopology out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.topo.add_switch(SwitchId(1 + i), 4,
                        geo_for((i * 4) / n, 0, static_cast<double>(i)));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    out.topo.add_link({SwitchId(1 + i), PortNo(1)},
                      {SwitchId(1 + (i + 1) % n), PortNo(0)});
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const HostId host = host_for(i);
    out.topo.attach_host(host, {SwitchId(1 + i), PortNo(2)});
    out.hosts.push_back(host);
  }
  return out;
}

GeneratedTopology grid(std::uint32_t w, std::uint32_t h) {
  util::ensure(w >= 1 && h >= 1, "grid needs positive dimensions");
  GeneratedTopology out;
  auto id = [w](std::uint32_t x, std::uint32_t y) {
    return SwitchId(1 + y * w + x);
  };
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const std::size_t quadrant =
          (x >= (w + 1) / 2 ? 1 : 0) + (y >= (h + 1) / 2 ? 2 : 0);
      out.topo.add_switch(id(x, y), 6,
                          geo_for(quadrant, static_cast<double>(y),
                                  static_cast<double>(x)));
    }
  }
  PortAllocator ports;
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      if (x + 1 < w) {
        out.topo.add_link(ports.take(id(x, y)), ports.take(id(x + 1, y)));
      }
      if (y + 1 < h) {
        out.topo.add_link(ports.take(id(x, y)), ports.take(id(x, y + 1)));
      }
    }
  }
  std::uint32_t host_index = 0;
  for (std::uint32_t y = 0; y < h; ++y) {
    for (std::uint32_t x = 0; x < w; ++x) {
      const HostId host = host_for(host_index++);
      out.topo.attach_host(host, ports.take(id(x, y)));
      out.hosts.push_back(host);
    }
  }
  return out;
}

GeneratedTopology random_isp(std::uint32_t n, std::uint32_t extra_links,
                             util::Rng& rng, std::uint32_t host_base) {
  util::ensure(n >= 2, "random topology needs >= 2 switches");
  GeneratedTopology out;
  // Generous port budget: tree degree + extras + host port.
  const std::uint32_t ports_per_switch = 4 + extra_links + 4;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.topo.add_switch(SwitchId(1 + i), ports_per_switch,
                        geo_for(rng.below(4), 0, static_cast<double>(i)));
  }
  PortAllocator ports;
  // Random spanning tree. The drawn parent may already have spent its port
  // budget on earlier tree children (the host port must stay reserved), so
  // probe forward deterministically from the draw until a switch with
  // capacity is found — total tree degree (2(n-1) endpoints) never exceeds
  // the aggregate budget (n * (ports_per_switch - 1)), so the probe always
  // terminates. Exactly one rng draw per node keeps the sequence identical
  // to the pre-fix generator whenever no switch ever runs out of ports.
  for (std::uint32_t i = 1; i < n; ++i) {
    auto parent = static_cast<std::uint32_t>(rng.below(i));
    while (ports.used(SwitchId(1 + parent)) + 2 > ports_per_switch) {
      parent = (parent + 1) % i;
    }
    out.topo.add_link(ports.take(SwitchId(1 + parent)),
                      ports.take(SwitchId(1 + i)));
  }
  // Extra random links (skip pairs that would exceed port budgets).
  for (std::uint32_t i = 0; i < extra_links; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a == b) continue;
    const SwitchId sa(1 + a), sb(1 + b);
    if (ports.used(sa) + 2 > ports_per_switch ||
        ports.used(sb) + 2 > ports_per_switch) {
      continue;
    }
    out.topo.add_link(ports.take(sa), ports.take(sb));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const HostId host = host_for(host_base, i);
    out.topo.attach_host(host, ports.take(SwitchId(1 + i)));
    out.hosts.push_back(host);
  }
  return out;
}

AsGraph as_graph(std::uint32_t n_domains, util::Rng& rng,
                 bool tier0_fat_tree) {
  util::ensure(n_domains >= 2, "as_graph needs >= 2 domains");
  AsGraph out;
  const std::uint32_t core = n_domains >= 4 ? 2 : 1;
  for (std::uint32_t d = 0; d < n_domains; ++d) {
    const std::uint32_t base = 1000 * (d + 1);
    if (d < core && tier0_fat_tree) {
      out.domains.push_back(fat_tree(4, 1, base));
    } else {
      out.domains.push_back(random_isp(4 + rng.below(4), 3, rng, base));
    }
    out.tier.push_back(0);
  }

  // Border-port pools: each domain's dark ports in deterministic
  // (switch, port) order, consumed front to back so adjacency ports never
  // collide.
  std::vector<std::vector<PortRef>> pool(n_domains);
  std::vector<std::size_t> next(n_domains, 0);
  for (std::uint32_t d = 0; d < n_domains; ++d) {
    for (const SwitchId sw : out.domains[d].topo.switches()) {
      for (const PortRef p : out.domains[d].topo.dark_ports(sw)) {
        pool[d].push_back(p);
      }
    }
  }
  auto link = [&](std::uint32_t up, std::uint32_t down, bool peer) {
    if (next[up] >= pool[up].size() || next[down] >= pool[down].size()) {
      return false;
    }
    out.adjacencies.push_back(AsAdjacency{up, down, peer,
                                          pool[up][next[up]++],
                                          pool[down][next[down]++]});
    return true;
  };

  // Tier-0 transit mesh: settlement-free peering among the core domains.
  for (std::uint32_t i = 0; i < core; ++i) {
    for (std::uint32_t j = i + 1; j < core; ++j) link(i, j, true);
  }
  for (std::uint32_t d = core; d < n_domains; ++d) {
    // Mandatory provider among the earlier domains; probe forward from the
    // draw if the candidate has no border ports left.
    auto provider = static_cast<std::uint32_t>(rng.below(d));
    bool linked = false;
    for (std::uint32_t tries = 0; tries < d && !linked; ++tries) {
      linked = link(provider, d, false);
      if (!linked) provider = (provider + 1) % d;
    }
    util::ensure(linked, "as_graph: no border ports left for provider edge");
    out.tier[d] = out.tier[provider] + 1;
    // Sometimes a second provider — only from a lower tier, so provider
    // edges always point down the hierarchy (valley-free digraph).
    if (rng.below(100) < 35) {
      const auto p2 = static_cast<std::uint32_t>(rng.below(d));
      if (p2 != provider && out.tier[p2] < out.tier[d]) link(p2, d, false);
    }
    // Sometimes a same-tier peer.
    if (rng.below(100) < 30) {
      std::vector<std::uint32_t> same_tier;
      for (std::uint32_t e = core; e < d; ++e) {
        if (out.tier[e] == out.tier[d]) same_tier.push_back(e);
      }
      if (!same_tier.empty()) {
        link(same_tier[rng.below(same_tier.size())], d, true);
      }
    }
  }
  return out;
}

}  // namespace rvaas::workload
