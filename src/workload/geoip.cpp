#include "workload/geoip.hpp"

namespace rvaas::workload {

namespace {

std::string wrong_jurisdiction(const std::string& truth, util::Rng& rng) {
  const auto& palette = jurisdiction_palette();
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::string& candidate = rng.pick(palette);
    if (candidate != truth) return candidate;
  }
  return palette.front();
}

}  // namespace

core::GeoIpDb synth_geoip_db(const sdn::Topology& topo,
                             const control::HostAddressing& addressing,
                             double error_rate, util::Rng& rng) {
  core::GeoIpDb db;
  for (const auto& [host, address] : addressing.all()) {
    const auto ports = topo.host_ports(host);
    if (ports.empty()) continue;
    std::string jurisdiction = topo.geo(ports.front().sw).jurisdiction;
    if (rng.bernoulli(error_rate)) {
      jurisdiction = wrong_jurisdiction(jurisdiction, rng);
    }
    db.add(address.ip, jurisdiction);
  }
  return db;
}

std::unique_ptr<core::CrowdSourcedGeo> synth_crowd_geo(
    const sdn::Topology& topo, double error_rate, util::Rng& rng) {
  auto geo = std::make_unique<core::CrowdSourcedGeo>(topo);
  for (const sdn::PortRef ap : topo.all_access_points()) {
    sdn::GeoLocation reported = topo.geo(ap.sw);
    reported.latitude += rng.uniform_real(-0.05, 0.05);
    reported.longitude += rng.uniform_real(-0.05, 0.05);
    if (rng.bernoulli(error_rate)) {
      reported.jurisdiction = wrong_jurisdiction(reported.jurisdiction, rng);
    }
    geo->add_report(ap, reported);
  }
  return geo;
}

}  // namespace rvaas::workload
