#include "workload/scenario.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace rvaas::workload {

namespace {

crypto::SigningKey make_key(std::uint64_t seed) {
  util::Rng rng(seed ^ 0x5ea15eed);
  return crypto::SigningKey::generate(rng);
}

}  // namespace

ScenarioRuntime::ScenarioRuntime(ScenarioConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      provider_key_(make_key(config_.seed)) {
  ias_ = std::make_unique<enclave::AttestationService>(rng_);
  net_ = std::make_unique<sdn::Network>(loop_, config_.generated.topo,
                                        config_.net);

  // Provider configuration: tenants round-robin, addressing for all hosts.
  control::ProviderConfig pconfig;
  util::ensure(config_.tenant_count >= 1, "need at least one tenant");
  for (std::size_t t = 0; t < config_.tenant_count; ++t) {
    control::TenantSpec tenant;
    tenant.id = sdn::TenantId(static_cast<std::uint32_t>(t + 1));
    tenant.vlan = static_cast<std::uint16_t>(100 + t);
    pconfig.tenants.push_back(tenant);
  }
  for (std::size_t i = 0; i < config_.generated.hosts.size(); ++i) {
    const sdn::HostId host = config_.generated.hosts[i];
    pconfig.addressing.assign(host);
    pconfig.tenants[i % config_.tenant_count].members.push_back(host);
  }
  for (const auto& [tenant_index, meter] : config_.tenant_meters) {
    util::ensure(tenant_index < pconfig.tenants.size(), "bad tenant index");
    pconfig.tenant_meters[pconfig.tenants[tenant_index].id] = meter;
  }

  provider_ = std::make_unique<control::ProviderController>(
      sdn::ControllerId(1), std::move(pconfig), rng_.fork());
  rvaas_ = std::make_unique<core::RvaasController>(
      sdn::ControllerId(2), *net_, *ias_, config_.rvaas, rng_.fork());

  // Trusted bootstrap: both controller certificates are configured on the
  // switches a priori (paper §III).
  net_->authorize_controller_key(provider_key_.verify_key().id());
  net_->authorize_controller_key(rvaas_->channel_key().id());

  provider_->connect(*net_, provider_key_);
  if (config_.with_geo) {
    rvaas_->set_geo_provider(
        std::make_unique<core::DisclosedGeo>(net_->topology()));
  }
  rvaas_->set_addressing(&provider_->addressing());

  // Client agents + enrollment + attestation-based trust establishment.
  for (const sdn::HostId host : config_.generated.hosts) {
    if (std::find(config_.wire_hosts.begin(), config_.wire_hosts.end(),
                  host) != config_.wire_hosts.end()) {
      // Reserved for a wire session: no agent, but burn the fork it would
      // have taken so every later agent keeps its key stream.
      (void)rng_.fork();
      continue;
    }
    auto agent = std::make_unique<core::ClientAgent>(
        host, *net_, provider_->addressing().of(host), rng_.fork());
    rvaas_->register_client(host, agent->verify_key(), agent->box_public());
    const bool attested = agent->verify_attestation(
        rvaas_->quote(), ias_->root_key(),
        enclave::measure_code(config_.rvaas.enclave_name,
                              config_.rvaas.enclave_version),
        rvaas_->enclave().verify_key(), rvaas_->enclave().box_public());
    util::ensure(attested, "client failed to attest genuine RVaaS");
    clients_.emplace(host, std::move(agent));
  }

  rvaas_->bootstrap();
  provider_->install_routing();
  settle();  // flush bootstrap flow-mods
}

core::ClientAgent& ScenarioRuntime::client(sdn::HostId host) {
  const auto it = clients_.find(host);
  util::ensure(it != clients_.end(), "unknown client host");
  return *it->second;
}

core::ClientAgent::Outcome ScenarioRuntime::query_and_wait(
    sdn::HostId client_host, const core::Query& query, sim::Time timeout) {
  return query_timed(client_host, query, timeout).outcome;
}

ScenarioRuntime::TimedOutcome ScenarioRuntime::query_timed(
    sdn::HostId client_host, const core::Query& query, sim::Time timeout) {
  std::optional<core::ClientAgent::Outcome> outcome;
  const sim::Time start = loop_.now();
  sim::Time arrival = start;
  client(client_host)
      .send_query(query,
                  [this, &outcome, &arrival](
                      const core::ClientAgent::Outcome& o) {
                    outcome = o;
                    arrival = loop_.now();
                    loop_.stop();  // return to the caller promptly
                  },
                  timeout);
  // The timeout event guarantees the outcome lands within `timeout`; add
  // margin for the delivery latency of the reply already in flight.
  loop_.run_until(start + timeout + 10 * sim::kMillisecond);
  util::ensure(outcome.has_value(), "query neither answered nor timed out");
  return TimedOutcome{*outcome, arrival - start};
}

}  // namespace rvaas::workload
