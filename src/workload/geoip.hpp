#pragma once
// Synthetic location-source builders for the geo experiments (E6): a geo-IP
// database and crowd-sourced client reports, each derived from topology
// ground truth with a configurable error rate.

#include "rvaas/geo.hpp"
#include "workload/topo_gen.hpp"

namespace rvaas::workload {

/// Builds a geo-IP database mapping every host prefix to its switch's true
/// jurisdiction, flipping each entry to a random wrong jurisdiction with
/// probability `error_rate`.
core::GeoIpDb synth_geoip_db(const sdn::Topology& topo,
                             const control::HostAddressing& addressing,
                             double error_rate, util::Rng& rng);

/// Builds crowd-sourced reports: each host reports its switch's true
/// location, with probability `error_rate` of claiming a wrong jurisdiction.
std::unique_ptr<core::CrowdSourcedGeo> synth_crowd_geo(
    const sdn::Topology& topo, double error_rate, util::Rng& rng);

}  // namespace rvaas::workload
