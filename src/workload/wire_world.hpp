#pragma once
// Glue between a ScenarioRuntime and the TCP front-end (src/net): builds the
// session-table slots for a scenario's reserved wire hosts, so tools, tests
// and the wire bench all derive identities the same way (same addressing
// plan, same access points as in-process agents would get).

#include "net/session.hpp"
#include "workload/scenario.hpp"

namespace rvaas::workload {

/// One WireSlot per host in `hosts`, resolved against the runtime's
/// topology and addressing plan.
inline std::vector<net::WireSlot> wire_slots(
    ScenarioRuntime& runtime, const std::vector<sdn::HostId>& hosts) {
  std::vector<net::WireSlot> slots;
  slots.reserve(hosts.size());
  for (const sdn::HostId host : hosts) {
    net::WireSlot slot;
    slot.host = host;
    slot.address = runtime.addressing().of(host);
    slot.access_point = runtime.network().topology().host_ports(host).front();
    slots.push_back(slot);
  }
  return slots;
}

}  // namespace rvaas::workload
