#include "workload/as_world.hpp"

#include <deque>
#include <set>

#include "hsa/transfer.hpp"
#include "util/ensure.hpp"

namespace rvaas::workload {

using core::NeighborClass;
using sdn::Field;
using sdn::FlowMod;
using sdn::Match;
using sdn::PortNo;
using sdn::PortRef;
using sdn::SwitchId;

namespace {

constexpr std::uint16_t kOwnAndCustomerPriority = 50;
constexpr std::uint16_t kIngressGuardPriority = 45;
constexpr std::uint16_t kPeerPriority = 44;
constexpr std::uint16_t kDefaultUpPriority = 40;
constexpr std::uint64_t kBaselineCookie = 0xa500;

/// For every switch reachable from `target`, the port leading one hop
/// closer to it (BFS over the internal links).
std::map<SwitchId, PortNo> ports_toward(const sdn::Topology& topo,
                                        SwitchId target) {
  std::map<SwitchId, PortNo> out;
  std::deque<SwitchId> queue{target};
  std::set<SwitchId> seen{target};
  while (!queue.empty()) {
    const SwitchId cur = queue.front();
    queue.pop_front();
    for (const sdn::LinkInfo& link : topo.links()) {
      PortRef far;
      if (link.a.sw == cur) {
        far = link.b;
      } else if (link.b.sw == cur) {
        far = link.a;
      } else {
        continue;
      }
      if (seen.insert(far.sw).second) {
        out[far.sw] = far.port;
        queue.push_back(far.sw);
      }
    }
  }
  return out;
}

}  // namespace

AsWorld::AsWorld(AsWorldConfig config) {
  util::Rng rng(config.seed);
  AsGraph graph = as_graph(config.n_domains, rng, config.tier0_fat_tree);
  tiers_ = graph.tier;
  adjacencies_ = graph.adjacencies;

  for (std::size_t d = 0; d < graph.domains.size(); ++d) {
    hosts_.push_back(graph.domains[d].hosts);
    ScenarioConfig sc;
    sc.generated = std::move(graph.domains[d]);
    sc.tenant_count = 1;
    sc.rvaas = config.rvaas;
    sc.seed = config.seed * 1000 + d + 1;
    runtimes_.push_back(std::make_unique<ScenarioRuntime>(std::move(sc)));
  }

  for (std::size_t d = 0; d < runtimes_.size(); ++d) {
    federation_.add_domain(provider_of(d), runtimes_[d]->rvaas());
  }
  for (const AsAdjacency& adj : adjacencies_) {
    const core::ProviderId up = provider_of(adj.up);
    const core::ProviderId down = provider_of(adj.down);
    // The physical wire carries traffic both ways; the federation's
    // peerings are directional, so declare both.
    federation_.add_peering(up, adj.up_port, down, adj.down_port);
    federation_.add_peering(down, adj.down_port, up, adj.up_port);
    if (adj.peer) {
      federation_.declare_relation(up, down, NeighborClass::Peer);
      federation_.declare_relation(down, up, NeighborClass::Peer);
    } else {
      federation_.declare_relation(up, down, NeighborClass::Customer);
      federation_.declare_relation(down, up, NeighborClass::Provider);
    }
    ingresses_.push_back(Ingress{
        adj.down, adj.up, adj.down_port,
        adj.peer ? NeighborClass::Peer : NeighborClass::Provider});
    ingresses_.push_back(Ingress{
        adj.up, adj.down, adj.up_port,
        adj.peer ? NeighborClass::Peer : NeighborClass::Customer});
  }

  // Every domain is authorized to originate exactly its own hosts'
  // prefixes — deliveries outside them are hijack indicators.
  for (std::size_t d = 0; d < runtimes_.size(); ++d) {
    hsa::HeaderSpace origin;
    for (const sdn::HostId h : hosts_[d]) {
      const std::uint32_t ip = control::HostAddressing::derive(h).ip;
      origin = origin.union_with(hsa::HeaderSpace(
          hsa::match_to_cube(Match().exact(Field::IpDst, ip))));
    }
    federation_.authorize_origin(provider_of(d), origin);
  }

  // Customer cones (own host IPs + every customer's cone, transitively).
  // Provider edges point strictly down-tier, so the recursion is over a DAG.
  cones_.resize(runtimes_.size());
  std::vector<std::vector<std::size_t>> customers(runtimes_.size());
  for (const AsAdjacency& adj : adjacencies_) {
    if (!adj.peer) customers[adj.up].push_back(adj.down);
  }
  std::vector<bool> done(runtimes_.size(), false);
  auto cone = [&](auto&& self, std::size_t d) -> void {
    if (done[d]) return;
    done[d] = true;
    std::set<std::uint32_t> ips;
    for (const sdn::HostId h : hosts_[d]) {
      ips.insert(control::HostAddressing::derive(h).ip);
    }
    for (const std::size_t c : customers[d]) {
      self(self, c);
      ips.insert(cones_[c].begin(), cones_[c].end());
    }
    cones_[d].assign(ips.begin(), ips.end());
  };
  for (std::size_t d = 0; d < runtimes_.size(); ++d) cone(cone, d);

  install_baseline_routing();
  settle_all();
}

void AsWorld::install(std::size_t d, SwitchId sw, const FlowMod& mod) {
  // Synchronous switch-level install (no control-channel round trip); the
  // flow monitor picks it up and the snapshot catches up on settle_all().
  runtimes_[d]->network().switch_sim(sw).apply_flow_mod(sdn::ControllerId(1),
                                                        mod);
}

void AsWorld::install_routes_toward(std::size_t d, PortRef target,
                                    const Match& match,
                                    std::uint16_t priority) {
  const sdn::Topology& topo = runtimes_[d]->network().topology();
  const auto toward = ports_toward(topo, target.sw);
  for (const SwitchId sw : topo.switches()) {
    FlowMod mod;
    mod.priority = priority;
    mod.cookie = kBaselineCookie;
    mod.match = match;
    if (sw == target.sw) {
      mod.actions = {sdn::DecTtlAction{}, sdn::output(target.port)};
    } else {
      const auto it = toward.find(sw);
      if (it == toward.end()) continue;  // disconnected from the target
      mod.actions = {sdn::DecTtlAction{}, sdn::output(it->second)};
    }
    install(d, sw, mod);
  }
}

void AsWorld::install_baseline_routing() {
  for (std::size_t d = 0; d < runtimes_.size(); ++d) {
    const sdn::Topology& topo = runtimes_[d]->network().topology();

    // P50: own hosts.
    for (const sdn::HostId h : hosts_[d]) {
      const auto ports = topo.host_ports(h);
      if (ports.empty()) continue;
      install_routes_toward(
          d, ports.front(),
          Match().exact(Field::IpDst, control::HostAddressing::derive(h).ip),
          kOwnAndCustomerPriority);
    }

    std::optional<PortRef> primary_provider_border;
    for (const AsAdjacency& adj : adjacencies_) {
      if (!adj.peer && adj.up == d) {
        // P50: down into this customer's cone.
        for (const std::uint32_t ip : cones_[adj.down]) {
          install_routes_toward(d, adj.up_port,
                                Match().exact(Field::IpDst, ip),
                                kOwnAndCustomerPriority);
        }
      } else if (!adj.peer && adj.down == d) {
        if (!primary_provider_border) primary_provider_border = adj.down_port;
      } else if (adj.peer && (adj.up == d || adj.down == d)) {
        // P44: toward this peer's cone (below the ingress guard, so only
        // own/customer traffic uses it).
        const std::size_t peer = adj.up == d ? adj.down : adj.up;
        const PortRef border = adj.up == d ? adj.up_port : adj.down_port;
        for (const std::uint32_t ip : cones_[peer]) {
          install_routes_toward(d, border, Match().exact(Field::IpDst, ip),
                                kPeerPriority);
        }
      }
    }

    // P45: guard every provider/peer ingress — transit traffic may only
    // leave through the P50 down-routes (the valley-free data plane).
    for (const Ingress& in : ingresses_) {
      if (in.domain != d) continue;
      if (in.feeder_class == NeighborClass::Customer) continue;
      FlowMod guard;
      guard.priority = kIngressGuardPriority;
      guard.cookie = kBaselineCookie;
      guard.match = Match().in_port(in.port.port);
      guard.actions = {sdn::drop()};
      install(d, in.port.sw, guard);
    }

    // P40: wildcard default — up toward the primary provider, or a drop at
    // the tier-0 core (a destination nobody originates must die somewhere,
    // not fall through to lower-priority tenant/churn rules).
    if (primary_provider_border) {
      install_routes_toward(d, *primary_provider_border, Match(),
                            kDefaultUpPriority);
    } else {
      for (const SwitchId sw : topo.switches()) {
        FlowMod mod;
        mod.priority = kDefaultUpPriority;
        mod.cookie = kBaselineCookie;
        mod.actions = {sdn::drop()};
        install(d, sw, mod);
      }
    }
  }
}

std::vector<AsWorld::Ingress> AsWorld::transit_ingresses() const {
  std::vector<Ingress> out;
  for (const Ingress& in : ingresses_) {
    if (in.feeder_class != NeighborClass::Customer) out.push_back(in);
  }
  return out;
}

void AsWorld::settle_all(sim::Time d) {
  for (auto& rt : runtimes_) rt->settle(d);
}

sdn::Trajectory AsWorld::trace(std::size_t d, PortRef ingress,
                               std::uint32_t dst_ip) {
  sdn::Packet packet;
  packet.hdr.eth_type = sdn::kEthTypeIpv4;
  packet.hdr.ip_proto = sdn::kIpProtoUdp;
  packet.hdr.ip_src = 0x0afe0001;  // outside every domain's host plan
  packet.hdr.ip_dst = dst_ip;
  packet.hdr.l4_dst = 33434;  // traceroute-ish
  return runtimes_[d]->network().trace(ingress, packet);
}

bool AsWorld::delivers_locally(std::size_t d, PortRef ingress,
                               std::uint32_t dst_ip) {
  const sdn::Trajectory t = trace(d, ingress, dst_ip);
  for (const auto& delivery : t.deliveries) {
    if (delivery.host.has_value()) return true;
  }
  return false;
}

bool AsWorld::crosses_border(std::size_t d, PortRef ingress,
                             std::uint32_t dst_ip, PortRef border) {
  const sdn::Trajectory t = trace(d, ingress, dst_ip);
  for (const auto& delivery : t.deliveries) {
    if (delivery.egress == border) return true;
  }
  return false;
}

}  // namespace rvaas::workload
