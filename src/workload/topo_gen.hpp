#pragma once
// Topology generators for experiments: fat-tree datacenters, linear/ring/grid
// WAN shapes, and random ISP-like graphs, each with jurisdiction-labelled
// geography.

#include <string>
#include <vector>

#include "sdn/topology.hpp"
#include "util/rng.hpp"

namespace rvaas::workload {

struct GeneratedTopology {
  sdn::Topology topo;
  std::vector<sdn::HostId> hosts;
};

/// Default jurisdiction palette used by the generators.
const std::vector<std::string>& jurisdiction_palette();

/// k-ary fat-tree (k even): k pods of k/2 edge + k/2 aggregation switches,
/// (k/2)^2 core switches; `hosts_per_edge` hosts on each edge switch
/// (default 1, max k/2). Pods rotate through the jurisdiction palette.
/// `host_base` offsets the generated host ids so multiple generated domains
/// can coexist in one federation without colliding (host ids must stay below
/// 2^16 for HostAddressing::derive to yield distinct IPs).
GeneratedTopology fat_tree(std::uint32_t k, std::uint32_t hosts_per_edge = 1,
                           std::uint32_t host_base = 1000);

/// n switches in a line, one host per switch. Jurisdictions change in
/// thirds (useful for geo experiments).
GeneratedTopology linear(std::uint32_t n);

/// Appends linear()'s exact wiring (port 0 = previous, 1 = next, 2 = host,
/// remaining ports dark) at arbitrary id offsets into an existing topology
/// — the building block behind linear() and the scenario fuzzer's
/// peer-domain / merged flat-reference topologies, kept in one place so the
/// port convention cannot silently diverge.
void append_linear_segment(sdn::Topology& topo, std::uint32_t base_switch,
                           std::uint32_t count, std::uint32_t base_host,
                           std::vector<sdn::HostId>* hosts = nullptr);

/// n switches in a line with `hosts_per_switch` hosts on each — the
/// host-dense shape the wire bench uses: hundreds of client sessions backed
/// by a verification fabric small enough to keep per-query HSA work flat.
GeneratedTopology linear_fanout(std::uint32_t n,
                                std::uint32_t hosts_per_switch);

/// n switches in a cycle, one host per switch.
GeneratedTopology ring(std::uint32_t n);

/// w x h grid, one host per switch; jurisdictions by quadrant.
GeneratedTopology grid(std::uint32_t w, std::uint32_t h);

/// Random connected graph: a random spanning tree plus `extra_links`
/// additional random links; one host per switch. See fat_tree for
/// `host_base`.
GeneratedTopology random_isp(std::uint32_t n, std::uint32_t extra_links,
                             util::Rng& rng, std::uint32_t host_base = 1000);

/// One inter-domain adjacency of an AS graph. For a provider/customer edge,
/// `up` is the provider and `down` the customer; for a settlement-free
/// peering (`peer == true`) the orientation is arbitrary and the tiers are
/// equal. The border ports are dark ports of the respective internal
/// topologies — the physical wire `up_port <-> down_port` exists only in the
/// federation's declared peerings, never inside either domain's topology.
struct AsAdjacency {
  std::uint32_t up = 0;
  std::uint32_t down = 0;
  bool peer = false;
  sdn::PortRef up_port;
  sdn::PortRef down_port;
};

struct AsGraph {
  std::vector<GeneratedTopology> domains;
  std::vector<std::uint32_t> tier;  ///< per-domain tier; 0 = transit core
  std::vector<AsAdjacency> adjacencies;
};

/// Rocketfuel-ish provider/peer/customer digraph of `n_domains` internal
/// topologies. The transit core (two domains when n >= 4, else one) sits at
/// tier 0 in a settlement-free peer mesh; every other domain gets a mandatory
/// provider among the earlier domains (tier = provider tier + 1), sometimes a
/// second provider from a lower-or-equal tier, and sometimes a same-tier
/// peer. Host ids are globally unique across domains (domain d uses
/// host_base 1000*(d+1)). `tier0_fat_tree` selects fat_tree(4) cores;
/// disabling it keeps every domain a small random_isp (cheaper worlds for
/// fuzzing).
AsGraph as_graph(std::uint32_t n_domains, util::Rng& rng,
                 bool tier0_fat_tree = true);

}  // namespace rvaas::workload
