#pragma once
// Topology generators for experiments: fat-tree datacenters, linear/ring/grid
// WAN shapes, and random ISP-like graphs, each with jurisdiction-labelled
// geography.

#include <string>
#include <vector>

#include "sdn/topology.hpp"
#include "util/rng.hpp"

namespace rvaas::workload {

struct GeneratedTopology {
  sdn::Topology topo;
  std::vector<sdn::HostId> hosts;
};

/// Default jurisdiction palette used by the generators.
const std::vector<std::string>& jurisdiction_palette();

/// k-ary fat-tree (k even): k pods of k/2 edge + k/2 aggregation switches,
/// (k/2)^2 core switches; `hosts_per_edge` hosts on each edge switch
/// (default 1, max k/2). Pods rotate through the jurisdiction palette.
GeneratedTopology fat_tree(std::uint32_t k, std::uint32_t hosts_per_edge = 1);

/// n switches in a line, one host per switch. Jurisdictions change in
/// thirds (useful for geo experiments).
GeneratedTopology linear(std::uint32_t n);

/// Appends linear()'s exact wiring (port 0 = previous, 1 = next, 2 = host,
/// remaining ports dark) at arbitrary id offsets into an existing topology
/// — the building block behind linear() and the scenario fuzzer's
/// peer-domain / merged flat-reference topologies, kept in one place so the
/// port convention cannot silently diverge.
void append_linear_segment(sdn::Topology& topo, std::uint32_t base_switch,
                           std::uint32_t count, std::uint32_t base_host,
                           std::vector<sdn::HostId>* hosts = nullptr);

/// n switches in a line with `hosts_per_switch` hosts on each — the
/// host-dense shape the wire bench uses: hundreds of client sessions backed
/// by a verification fabric small enough to keep per-query HSA work flat.
GeneratedTopology linear_fanout(std::uint32_t n,
                                std::uint32_t hosts_per_switch);

/// n switches in a cycle, one host per switch.
GeneratedTopology ring(std::uint32_t n);

/// w x h grid, one host per switch; jurisdictions by quadrant.
GeneratedTopology grid(std::uint32_t w, std::uint32_t h);

/// Random connected graph: a random spanning tree plus `extra_links`
/// additional random links; one host per switch.
GeneratedTopology random_isp(std::uint32_t n, std::uint32_t extra_links,
                             util::Rng& rng);

}  // namespace rvaas::workload
