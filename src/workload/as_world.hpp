#pragma once
// AsWorld: a many-domain federation world over topo_gen's as_graph. Each
// domain runs a full ScenarioRuntime (its own event loop, provider, RVaaS
// enclave); the Federation gets both peering directions, the Gao-Rexford
// relations and authorized-origin prefixes of every adjacency, and each
// domain's provider installs a valley-free inter-domain baseline:
//
//   P50  dst-exact routes to own hosts and down into customer cones
//   P45  in_port guard (drop) on every provider/peer ingress — what enters
//        from a non-customer may only leave through the P50 down-routes
//   P44  dst-exact routes toward peer cones (below the guard: customer and
//        own traffic reaches peers, transit traffic does not)
//   P40  wildcard default up toward the primary provider (tier-0 domains
//        drop instead: a dst nobody originates dies at the core)
//
// The priorities sit above tenant routing (8-10) and fuzz churn (1-29), and
// below the inter-domain attacks (60) and the RVaaS in-band rules (0xffff),
// so policy walks and functional traces see exactly this baseline plus
// whatever an attack overlays.

#include "rvaas/multiprovider.hpp"
#include "workload/scenario.hpp"

namespace rvaas::workload {

struct AsWorldConfig {
  std::uint32_t n_domains = 4;
  std::uint64_t seed = 1;
  /// fat_tree(4) transit cores; off = small random_isp everywhere (cheaper
  /// worlds for the policy fuzzer).
  bool tier0_fat_tree = true;
  /// Applied to every domain's RVaaS controller.
  core::RvaasConfig rvaas;
};

class AsWorld {
 public:
  explicit AsWorld(AsWorldConfig config);

  AsWorld(const AsWorld&) = delete;
  AsWorld& operator=(const AsWorld&) = delete;

  static core::ProviderId provider_of(std::size_t d) {
    return core::ProviderId(static_cast<std::uint32_t>(d + 1));
  }

  std::size_t domain_count() const { return runtimes_.size(); }
  ScenarioRuntime& domain(std::size_t d) { return *runtimes_[d]; }
  core::Federation& federation() { return federation_; }
  const std::vector<AsAdjacency>& adjacencies() const { return adjacencies_; }
  const std::vector<std::uint32_t>& tiers() const { return tiers_; }
  const std::vector<sdn::HostId>& domain_hosts(std::size_t d) const {
    return hosts_[d];
  }

  /// One declared ingress of a domain (either direction of a peering).
  struct Ingress {
    std::size_t domain = 0;  ///< domain owning `port`
    std::size_t feeder = 0;  ///< domain on the far side of the wire
    sdn::PortRef port;       ///< ingress port inside `domain`
    /// What `feeder` is to `domain` (a route leak needs a non-Customer).
    core::NeighborClass feeder_class = core::NeighborClass::Customer;
  };
  const std::vector<Ingress>& ingresses() const { return ingresses_; }
  /// Only the provider/peer-fed ingresses: where transit traffic enters and
  /// route leaks become possible.
  std::vector<Ingress> transit_ingresses() const;

  void settle_all(sim::Time d = 10 * sim::kMillisecond);

  /// Functional ground truth: trajectory of an untagged UDP packet with
  /// destination `dst_ip` injected at `ingress` of domain `d`.
  sdn::Trajectory trace(std::size_t d, sdn::PortRef ingress,
                        std::uint32_t dst_ip);
  /// ... delivered to a host access point inside `d`?
  bool delivers_locally(std::size_t d, sdn::PortRef ingress,
                        std::uint32_t dst_ip);
  /// ... leaves `d` through `border` (a dark port from d's point of view)?
  bool crosses_border(std::size_t d, sdn::PortRef ingress,
                      std::uint32_t dst_ip, sdn::PortRef border);

  /// IPs of domain d's own hosts plus its whole customer cone — what the
  /// baseline routes down from d.
  const std::vector<std::uint32_t>& cone_ips(std::size_t d) const {
    return cones_[d];
  }

 private:
  void install_baseline_routing();
  void install(std::size_t d, sdn::SwitchId sw, const sdn::FlowMod& mod);
  /// Installs `match`-routes on every switch of `d` toward `target`
  /// (output(target.port) on target.sw, next hop toward it elsewhere).
  void install_routes_toward(std::size_t d, sdn::PortRef target,
                             const sdn::Match& match, std::uint16_t priority);

  std::vector<std::unique_ptr<ScenarioRuntime>> runtimes_;
  std::vector<std::vector<sdn::HostId>> hosts_;
  std::vector<std::vector<std::uint32_t>> cones_;
  std::vector<std::uint32_t> tiers_;
  std::vector<AsAdjacency> adjacencies_;
  std::vector<Ingress> ingresses_;
  core::Federation federation_;
};

}  // namespace rvaas::workload
