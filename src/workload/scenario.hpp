#pragma once
// ScenarioRuntime: wires a full experiment — topology, provider controller
// with tenant routing, RVaaS controller inside its enclave, client agents
// with attestation-established trust — on one event loop. Used by the
// integration tests, examples and benchmark harnesses.

#include <memory>

#include "attacks/attacks.hpp"
#include "rvaas/client.hpp"
#include "rvaas/controller.hpp"
#include "workload/topo_gen.hpp"

namespace rvaas::workload {

struct ScenarioConfig {
  GeneratedTopology generated;
  /// Hosts are split round-robin over this many tenants (VLANs 100+i).
  std::size_t tenant_count = 1;
  core::RvaasConfig rvaas;
  sdn::NetworkConfig net;
  std::uint64_t seed = 1;
  /// Install a DisclosedGeo provider (truth) by default.
  bool with_geo = true;
  /// Hosts reserved for wire (TCP) sessions: no in-process agent is created
  /// or enrolled for them — the wire front-end (src/net) enrolls the
  /// connecting client's keys instead. One rng fork is still burned per
  /// reserved host, so every other agent draws exactly the keys it would in
  /// an all-in-process run (the wire byte-identity tests rely on this).
  std::vector<sdn::HostId> wire_hosts;
  /// Per-tenant meter configs (index into tenants list).
  std::map<std::size_t, sdn::MeterConfig> tenant_meters;
};

class ScenarioRuntime {
 public:
  explicit ScenarioRuntime(ScenarioConfig config);

  ScenarioRuntime(const ScenarioRuntime&) = delete;
  ScenarioRuntime& operator=(const ScenarioRuntime&) = delete;

  sim::EventLoop& loop() { return loop_; }
  sdn::Network& network() { return *net_; }
  control::ProviderController& provider() { return *provider_; }
  core::RvaasController& rvaas() { return *rvaas_; }
  const enclave::AttestationService& ias() const { return *ias_; }
  core::ClientAgent& client(sdn::HostId host);
  const std::vector<sdn::HostId>& hosts() const { return config_.generated.hosts; }
  const control::HostAddressing& addressing() const {
    return provider_->addressing();
  }

  /// Runs the loop for `d` of simulated time (pollers keep the loop busy, so
  /// callers must always bound execution).
  void settle(sim::Time d = 10 * sim::kMillisecond) {
    loop_.run_until(loop_.now() + d);
  }

  /// Sends a query from a client and runs the loop until the outcome lands.
  core::ClientAgent::Outcome query_and_wait(
      sdn::HostId client_host, const core::Query& query,
      sim::Time timeout = 50 * sim::kMillisecond);

  struct TimedOutcome {
    core::ClientAgent::Outcome outcome;
    sim::Time latency = 0;  ///< simulated request-to-outcome time
  };
  /// As query_and_wait, but also reports the simulated latency until the
  /// outcome (reply or timeout) fired.
  TimedOutcome query_timed(sdn::HostId client_host, const core::Query& query,
                           sim::Time timeout = 50 * sim::kMillisecond);

  // --- stepwise mutation hooks (randomized schedules, src/testing) ---

  /// Applies one flow-table change through the provider's authenticated
  /// control channel (like a reconfiguring — or compromised — provider).
  /// The result lands asynchronously after the control round trip.
  void provider_flow_mod(sdn::SwitchId sw, const sdn::FlowMod& mod,
                         sdn::FlowModCallback cb = {}) {
    provider_->handle().flow_mod(sw, mod, std::move(cb));
  }

  /// Applies one meter change through the provider channel. Meters are
  /// outside the snapshot change clock — RVaaS only sees them via polls.
  void provider_meter_mod(sdn::SwitchId sw, const sdn::MeterMod& mod) {
    provider_->handle().meter_mod(sw, mod);
  }

  /// Restart/recovery simulation: the RVaaS snapshot keeps its content but
  /// takes a fresh identity, forcing every cache tier to fully rebuild.
  void reset_rvaas_snapshot_identity() { rvaas_->reset_snapshot_identity(); }

  /// The signing key the (compromisable!) provider uses on its channels.
  const crypto::SigningKey& provider_key() const { return provider_key_; }

 private:
  ScenarioConfig config_;
  sim::EventLoop loop_;
  util::Rng rng_;
  std::unique_ptr<enclave::AttestationService> ias_;
  std::unique_ptr<sdn::Network> net_;
  crypto::SigningKey provider_key_;
  std::unique_ptr<control::ProviderController> provider_;
  std::unique_ptr<core::RvaasController> rvaas_;
  std::map<sdn::HostId, std::unique_ptr<core::ClientAgent>> clients_;
};

}  // namespace rvaas::workload
