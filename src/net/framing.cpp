#include "net/framing.hpp"

#include "util/ensure.hpp"

namespace rvaas::net {

namespace {

std::uint32_t read_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void write_be32(util::Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

util::Bytes encode_frame(std::span<const std::uint8_t> payload) {
  util::ensure(!payload.empty() && payload.size() <= kMaxFrameBytes,
               "outbound frame violates the frame bound");
  util::Bytes out;
  out.reserve(kFrameLengthBytes + payload.size());
  write_be32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool FrameDecoder::feed(std::span<const std::uint8_t> data) {
  if (poisoned_) return false;
  std::size_t i = 0;
  while (i < data.size()) {
    if (expected_ == 0) {
      // Accumulate the 4-byte length prefix (it may arrive split).
      while (buffer_.size() < kFrameLengthBytes && i < data.size()) {
        buffer_.push_back(data[i++]);
      }
      if (buffer_.size() < kFrameLengthBytes) return true;
      const std::uint32_t claim = read_be32(buffer_.data());
      buffer_.clear();
      // The bound check precedes any allocation sized by the claim: a
      // 4-byte "4 GiB follows" must cost nothing.
      if (claim == 0 || claim > max_frame_) {
        poisoned_ = true;
        return false;
      }
      expected_ = claim;
      frame_.clear();
      frame_.reserve(expected_);
    }
    const std::size_t want = expected_ - frame_.size();
    const std::size_t got = std::min(want, data.size() - i);
    frame_.insert(frame_.end(), data.begin() + static_cast<std::ptrdiff_t>(i),
                  data.begin() + static_cast<std::ptrdiff_t>(i + got));
    i += got;
    if (frame_.size() == expected_) {
      ready_.push_back(std::move(frame_));
      frame_.clear();
      expected_ = 0;
    }
  }
  return true;
}

std::optional<util::Bytes> FrameDecoder::take() {
  if (ready_.empty()) return std::nullopt;
  util::Bytes out = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return out;
}

// --- wire messages ---

util::Bytes WireHello::encode() const {
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(WireTag::Hello));
  w.put_u32(version);
  w.put_bytes(client_key.serialize());
  w.put_bytes(client_box_pub.to_bytes());
  w.put_u32(requested_host);
  return w.take();
}

std::optional<WireHello> WireHello::decode(
    std::span<const std::uint8_t> frame) {
  try {
    util::ByteReader r(frame);
    if (static_cast<WireTag>(r.get_u32()) != WireTag::Hello) {
      return std::nullopt;
    }
    WireHello h;
    h.version = r.get_u32();
    {
      util::ByteReader kr(r.get_bytes());
      h.client_key = crypto::VerifyKey::deserialize(kr);
    }
    h.client_box_pub = crypto::BigUInt::from_bytes(r.get_bytes());
    h.requested_host = r.get_u32();
    r.expect_done();
    return h;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

util::Bytes WireWelcome::encode() const {
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(WireTag::Welcome));
  w.put_u8(static_cast<std::uint8_t>(status));
  w.put_u32(host.value);
  w.put_u64(address.eth);
  w.put_u32(address.ip);
  w.put_u32(access_point.sw.value);
  w.put_u32(access_point.port.value);
  w.put_bytes(rvaas_key.serialize());
  w.put_bytes(rvaas_box_pub.to_bytes());
  w.put_bytes(quote.serialize());
  w.put_bytes(ias_root.serialize());
  w.put_string(enclave_name);
  w.put_string(enclave_version);
  return w.take();
}

std::optional<WireWelcome> WireWelcome::decode(
    std::span<const std::uint8_t> frame) {
  try {
    util::ByteReader r(frame);
    if (static_cast<WireTag>(r.get_u32()) != WireTag::Welcome) {
      return std::nullopt;
    }
    WireWelcome m;
    m.status = static_cast<WelcomeStatus>(r.get_u8());
    m.host = sdn::HostId(r.get_u32());
    m.address.eth = r.get_u64();
    m.address.ip = r.get_u32();
    m.access_point.sw = sdn::SwitchId(r.get_u32());
    m.access_point.port = sdn::PortNo(r.get_u32());
    {
      util::ByteReader kr(r.get_bytes());
      m.rvaas_key = crypto::VerifyKey::deserialize(kr);
    }
    m.rvaas_box_pub = crypto::BigUInt::from_bytes(r.get_bytes());
    {
      util::ByteReader qr(r.get_bytes());
      m.quote = enclave::Quote::deserialize(qr);
    }
    {
      util::ByteReader ir(r.get_bytes());
      m.ias_root = crypto::VerifyKey::deserialize(ir);
    }
    m.enclave_name = r.get_string();
    m.enclave_version = r.get_string();
    r.expect_done();
    return m;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

util::Bytes encode_inband(const sdn::Packet& packet) {
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(WireTag::Inband));
  packet.serialize(w);
  return w.take();
}

std::optional<sdn::Packet> decode_inband(
    std::span<const std::uint8_t> frame) {
  try {
    util::ByteReader r(frame);
    if (static_cast<WireTag>(r.get_u32()) != WireTag::Inband) {
      return std::nullopt;
    }
    sdn::Packet p = sdn::Packet::deserialize(r);
    r.expect_done();
    return p;
  } catch (const util::DecodeError&) {
    return std::nullopt;
  }
}

std::optional<WireTag> peek_tag(std::span<const std::uint8_t> frame) {
  if (frame.size() < 4) return std::nullopt;
  // Tags are ByteWriter-serialized (little-endian), like the codec tags.
  const std::uint32_t raw = static_cast<std::uint32_t>(frame[0]) |
                            (static_cast<std::uint32_t>(frame[1]) << 8) |
                            (static_cast<std::uint32_t>(frame[2]) << 16) |
                            (static_cast<std::uint32_t>(frame[3]) << 24);
  const auto tag = static_cast<WireTag>(raw);
  switch (tag) {
    case WireTag::Hello:
    case WireTag::Welcome:
    case WireTag::Inband:
      return tag;
  }
  return std::nullopt;
}

}  // namespace rvaas::net
