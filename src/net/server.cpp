#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
#include <poll.h>
#endif

#include "rvaas/inband.hpp"
#include "util/ensure.hpp"

namespace rvaas::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  util::ensure(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "fcntl(O_NONBLOCK) failed");
}

/// Readiness notifier pollable by the I/O loop (eventfd on Linux, a
/// self-pipe elsewhere).
class Wakeup {
 public:
  Wakeup() {
#if defined(__linux__)
    read_fd_ = write_fd_ = ::eventfd(0, EFD_NONBLOCK);
    util::ensure(read_fd_ >= 0, "eventfd failed");
#else
    int fds[2];
    util::ensure(::pipe(fds) == 0, "pipe failed");
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    set_nonblocking(read_fd_);
    set_nonblocking(write_fd_);
#endif
  }
  ~Wakeup() {
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }
  int fd() const { return read_fd_; }
  void notify() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(write_fd_, &one, sizeof one);  // full pipe == already pending
  }
  void drain() {
    std::uint8_t buf[64];
    while (::read(read_fd_, buf, sizeof buf) > 0) {
    }
  }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// Thin readiness-poller: epoll on Linux, poll(2) fallback elsewhere.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

#if defined(__linux__)
  Poller() : epfd_(::epoll_create1(0)) {
    util::ensure(epfd_ >= 0, "epoll_create1 failed");
  }
  ~Poller() { ::close(epfd_); }
  void add(int fd, bool write) { ctl(EPOLL_CTL_ADD, fd, write); }
  void mod(int fd, bool write) { ctl(EPOLL_CTL_MOD, fd, write); }
  void del(int fd) { ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr); }
  void wait(std::vector<Event>& out, int timeout_ms) {
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    out.clear();
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = events[i].data.fd;
      e.readable = (events[i].events & EPOLLIN) != 0;
      e.writable = (events[i].events & EPOLLOUT) != 0;
      e.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
  }

 private:
  void ctl(int op, int fd, bool write) {
    epoll_event ev{};
    ev.events = EPOLLIN | (write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    util::ensure(::epoll_ctl(epfd_, op, fd, &ev) == 0, "epoll_ctl failed");
  }
  int epfd_;
#else
  void add(int fd, bool write) {
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, static_cast<short>(POLLIN | (write ? POLLOUT : 0)), 0});
  }
  void mod(int fd, bool write) {
    fds_[index_.at(fd)].events =
        static_cast<short>(POLLIN | (write ? POLLOUT : 0));
  }
  void del(int fd) {
    const std::size_t i = index_.at(fd);
    index_.erase(fd);
    fds_[i] = fds_.back();
    fds_.pop_back();
    if (i < fds_.size()) index_[fds_[i].fd] = i;
  }
  void wait(std::vector<Event>& out, int timeout_ms) {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    out.clear();
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
      if (out.size() == static_cast<std::size_t>(n)) break;
    }
  }

 private:
  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
#endif
};

}  // namespace

/// One outbound unit routed from the service thread to a connection's
/// owning I/O thread, which signs/seals and ships it.
struct WireServer::Outbound {
  enum class Kind { Reply, Notification, AuthRequest } kind = Kind::Reply;
  std::uint64_t conn = 0;
  core::QueryReply reply;
  core::Notification notification;
  inband::AuthRequest auth;
};

struct WireServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  FrameDecoder decoder;
  bool hello_done = false;
  bool has_session = false;
  WireSlot slot;
  crypto::VerifyKey client_key;
  crypto::BigUInt client_box_pub;
  /// Outbound frames awaiting the socket; coalesced into one writev per
  /// flush. out_offset_ is the partially-written prefix of the front frame.
  std::deque<util::Bytes> outq;
  std::size_t out_offset = 0;
  bool want_write = false;
  bool close_after_flush = false;
};

struct WireServer::IoThread {
  IoThread(std::size_t index, std::uint64_t seed) : index(index), rng(seed) {}

  const std::size_t index;
  std::thread thread;
  Poller poller;
  Wakeup wakeup;
  util::Rng rng;  ///< sealing randomness, confined to this thread

  std::mutex mu;
  std::vector<Outbound> mailbox;
  std::vector<int> adopt_fds;
  bool stop = false;

  // Owned exclusively by this thread's loop:
  std::unordered_map<int, std::unique_ptr<Connection>> conns;  // by fd
  std::unordered_map<std::uint64_t, int> fd_of;                // id -> fd
};

WireServer::WireServer(WireServerConfig config,
                       core::RvaasController& controller, WireService& service,
                       crypto::VerifyKey ias_root, std::vector<WireSlot> slots,
                       std::uint64_t seed)
    : config_(std::move(config)),
      controller_(&controller),
      service_(&service),
      ias_root_(std::move(ias_root)),
      sessions_(std::move(slots)),
      seed_(seed) {
  util::ensure(config_.io_threads >= 1, "need at least one I/O thread");
  welcome_template_.rvaas_key = controller.enclave().verify_key();
  welcome_template_.rvaas_box_pub = controller.enclave().box_public();
  welcome_template_.quote = controller.quote();
  welcome_template_.ias_root = ias_root_;
  welcome_template_.enclave_name = controller.enclave().name();
  welcome_template_.enclave_version = controller.enclave().version();
}

WireServer::~WireServer() { stop(); }

void WireServer::start() {
  util::ensure(!started_, "WireServer already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  util::ensure(listen_fd_ >= 0, "socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  util::ensure(
      ::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) == 1,
      "bad bind address");
  util::ensure(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof addr) == 0,
               "bind() failed");
  util::ensure(::listen(listen_fd_, 512) == 0, "listen() failed");
  set_nonblocking(listen_fd_);
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  for (std::size_t i = 0; i < config_.io_threads; ++i) {
    io_threads_.push_back(
        std::make_unique<IoThread>(i, seed_ ^ (0x10a4ull * (i + 1))));
  }
  // The controller offers outbound deliveries from the service thread; the
  // attach itself must happen there too.
  service_->call([this] { controller_->set_wire_transport(this); });
  for (std::size_t i = 0; i < io_threads_.size(); ++i) {
    IoThread& t = *io_threads_[i];
    t.thread = std::thread([this, &t, i] { io_run(t, /*is_acceptor=*/i == 0); });
  }
  started_ = true;
}

void WireServer::stop() {
  if (!started_) return;
  started_ = false;
  service_->call([this] { controller_->set_wire_transport(nullptr); });
  for (auto& t : io_threads_) {
    {
      std::lock_guard<std::mutex> lock(t->mu);
      t->stop = true;
    }
    t->wakeup.notify();
  }
  for (auto& t : io_threads_) t->thread.join();
  io_threads_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

WireServer::Stats WireServer::stats() const {
  Stats s;
  s.connections_accepted = stats_.connections_accepted.load();
  s.connections_closed = stats_.connections_closed.load();
  s.bytes_in = stats_.bytes_in.load();
  s.bytes_out = stats_.bytes_out.load();
  s.frames_in = stats_.frames_in.load();
  s.frames_out = stats_.frames_out.load();
  s.flushes = stats_.flushes.load();
  s.bad_frames = stats_.bad_frames.load();
  s.bad_hellos = stats_.bad_hellos.load();
  s.bad_envelopes = stats_.bad_envelopes.load();
  s.requests_in = stats_.requests_in.load();
  s.subscribes_in = stats_.subscribes_in.load();
  s.auth_replies_in = stats_.auth_replies_in.load();
  s.replies_out = stats_.replies_out.load();
  s.notifications_out = stats_.notifications_out.load();
  s.auth_requests_out = stats_.auth_requests_out.load();
  s.evictions = stats_.evictions.load();
  return s;
}

// --- WireTransport (service thread) ---

bool WireServer::deliver_reply(sdn::HostId client,
                               const core::QueryReply& reply) {
  const auto conn = sessions_.owner_of_host(client);
  if (!conn) return false;
  Outbound out;
  out.kind = Outbound::Kind::Reply;
  out.conn = *conn;
  out.reply = reply;
  enqueue_outbound(*conn, std::move(out));
  return true;
}

bool WireServer::deliver_notification(sdn::HostId client,
                                      const core::Notification& notification) {
  const auto conn = sessions_.owner_of_host(client);
  if (!conn) return false;
  Outbound out;
  out.kind = Outbound::Kind::Notification;
  out.conn = *conn;
  out.notification = notification;
  enqueue_outbound(*conn, std::move(out));
  return true;
}

bool WireServer::deliver_auth_request(sdn::PortRef target,
                                      const inband::AuthRequest& req) {
  const auto conn = sessions_.owner_of_port(target);
  if (!conn) return false;
  Outbound out;
  out.kind = Outbound::Kind::AuthRequest;
  out.conn = *conn;
  out.auth = req;
  enqueue_outbound(*conn, std::move(out));
  return true;
}

void WireServer::enqueue_outbound(std::uint64_t conn_id, Outbound out) {
  IoThread& t = *io_threads_[conn_id % io_threads_.size()];
  {
    std::lock_guard<std::mutex> lock(t.mu);
    t.mailbox.push_back(std::move(out));
  }
  t.wakeup.notify();
}

// --- I/O threads ---

void WireServer::io_run(IoThread& t, bool is_acceptor) {
  t.poller.add(t.wakeup.fd(), /*write=*/false);
  if (is_acceptor) t.poller.add(listen_fd_, /*write=*/false);

  std::vector<Poller::Event> events;
  bool stopping = false;
  while (!stopping) {
    t.poller.wait(events, -1);
    for (const Poller::Event& e : events) {
      if (e.fd == t.wakeup.fd()) {
        t.wakeup.drain();
        continue;  // mailbox handled below, once per wakeup batch
      }
      if (is_acceptor && e.fd == listen_fd_) {
        accept_ready(t);
        continue;
      }
      const auto it = t.conns.find(e.fd);
      if (it == t.conns.end()) continue;  // closed earlier in this batch
      Connection& conn = *it->second;
      if (e.error) {
        close_connection(t, conn);
        continue;
      }
      if (e.readable) handle_read(t, conn);
      // Re-check: handle_read may have closed the connection.
      if (e.writable && t.conns.contains(e.fd)) flush(t, conn);
    }
    process_mailbox(t);
    {
      std::lock_guard<std::mutex> lock(t.mu);
      stopping = t.stop;
    }
  }
  // Shutdown: close every connection (releasing slots, evicting sessions).
  while (!t.conns.empty()) close_connection(t, *t.conns.begin()->second);
}

void WireServer::accept_ready(IoThread& t) {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next event
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ++stats_.connections_accepted;
    // Shard by connection id; hand the fd to the owning thread's loop.
    const std::uint64_t id = next_conn_id_.fetch_add(1);
    IoThread& target = *io_threads_[id % io_threads_.size()];
    if (&target == &t) {
      adopt(t, fd);
    } else {
      {
        std::lock_guard<std::mutex> lock(target.mu);
        target.adopt_fds.push_back(fd);
      }
      target.wakeup.notify();
    }
  }
}

void WireServer::adopt(IoThread& t, int fd) {
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  // Outbound routing shards by id (conn % threads), so the id must land on
  // this thread's shard.
  const std::size_t n = io_threads_.size();
  std::uint64_t id = next_conn_id_.fetch_add(1);
  while (id % n != t.index) id = next_conn_id_.fetch_add(1);
  conn->id = id;
  conn->decoder = FrameDecoder(config_.max_frame);
  t.fd_of[id] = fd;
  t.poller.add(fd, /*write=*/false);
  t.conns.emplace(fd, std::move(conn));
}

void WireServer::process_mailbox(IoThread& t) {
  std::vector<Outbound> mail;
  std::vector<int> adopts;
  {
    std::lock_guard<std::mutex> lock(t.mu);
    mail.swap(t.mailbox);
    adopts.swap(t.adopt_fds);
  }
  for (const int fd : adopts) adopt(t, fd);
  for (Outbound& out : mail) {
    const auto fd_it = t.fd_of.find(out.conn);
    if (fd_it == t.fd_of.end()) continue;  // connection died in the meantime
    const auto it = t.conns.find(fd_it->second);
    if (it == t.conns.end()) continue;
    Connection& conn = *it->second;
    // Sign/seal here, off the service thread, with this thread's rng. The
    // sealed bytes differ per rng draw but open to identical plaintext.
    sdn::Packet packet;
    switch (out.kind) {
      case Outbound::Kind::Reply:
        packet = inband::make_reply_packet(out.reply, controller_->enclave(),
                                           conn.client_box_pub, t.rng);
        ++stats_.replies_out;
        break;
      case Outbound::Kind::Notification:
        packet =
            inband::make_notify_packet(out.notification, controller_->enclave(),
                                       conn.client_box_pub, t.rng);
        ++stats_.notifications_out;
        break;
      case Outbound::Kind::AuthRequest:
        packet = inband::make_auth_request(out.auth, controller_->enclave());
        ++stats_.auth_requests_out;
        break;
    }
    send_frame(t, conn, encode_inband(packet));
  }
}

void WireServer::handle_read(IoThread& t, Connection& conn) {
  const int fd = conn.fd;  // `conn` dies if a frame handler closes it
  while (true) {
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n == 0) {
      close_connection(t, conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(t, conn);
      return;
    }
    stats_.bytes_in += static_cast<std::uint64_t>(n);
    if (!conn.decoder.feed({buf, static_cast<std::size_t>(n)})) {
      // Bogus length claim: the stream is unrecoverable by construction.
      ++stats_.bad_frames;
      close_connection(t, conn);
      return;
    }
    while (true) {
      auto frame = conn.decoder.take();
      if (!frame) break;
      handle_frame(t, conn, *frame);
      if (!t.conns.contains(fd)) return;  // frame handler closed us
    }
  }
}

void WireServer::handle_frame(IoThread& t, Connection& conn,
                              std::span<const std::uint8_t> frame) {
  ++stats_.frames_in;
  if (!conn.hello_done) {
    handle_hello(t, conn, frame);
    return;
  }
  const auto tag = peek_tag(frame);
  if (tag != WireTag::Inband) {
    ++stats_.bad_frames;  // duplicate HELLO, server-role tag, or unknown
    return;
  }
  const auto packet = decode_inband(frame);
  if (!packet) {
    ++stats_.bad_frames;
    return;
  }
  handle_inband(t, conn, *packet);
}

void WireServer::handle_hello(IoThread& t, Connection& conn,
                              std::span<const std::uint8_t> frame) {
  const auto hello =
      peek_tag(frame) == WireTag::Hello ? WireHello::decode(frame) : std::nullopt;
  if (!hello || hello->version != 1) {
    ++stats_.bad_hellos;
    close_connection(t, conn);
    return;
  }
  WireWelcome welcome = welcome_template_;
  WireSlot slot;
  welcome.status = sessions_.claim(hello->requested_host, conn.id, &slot);
  if (welcome.status != WelcomeStatus::Ok) {
    ++stats_.bad_hellos;
    send_frame(t, conn, welcome.encode());
    conn.close_after_flush = true;
    flush(t, conn);
    return;
  }
  conn.hello_done = true;
  conn.has_session = true;
  conn.slot = slot;
  conn.client_key = hello->client_key;
  conn.client_box_pub = hello->client_box_pub;
  welcome.host = slot.host;
  welcome.address = slot.address;
  welcome.access_point = slot.access_point;
  // Enroll before any request from this session can be admitted: post()
  // order is FIFO, so the registration lands first on the service thread.
  service_->post([controller = controller_, host = slot.host,
                  key = hello->client_key, box = hello->client_box_pub] {
    controller->register_client(host, key, box);
  });
  send_frame(t, conn, welcome.encode());
}

void WireServer::handle_inband(IoThread&, Connection& conn,
                               const sdn::Packet& packet) {
  const auto tag = inband::classify(packet);
  if (!tag) {
    ++stats_.bad_frames;
    return;
  }
  switch (*tag) {
    case inband::Tag::Request: {
      // Unseal on this I/O thread; only the plain struct crosses over.
      const auto request = inband::open_request(packet, controller_->enclave());
      if (!request || request->client != conn.slot.host) {
        ++stats_.bad_envelopes;
        return;
      }
      ++stats_.requests_in;
      service_->post([controller = controller_, req = *request,
                      ap = conn.slot.access_point] {
        controller->wire_request(req, ap);
      });
      return;
    }
    case inband::Tag::Subscribe: {
      const auto opened =
          inband::open_subscribe(packet, controller_->enclave());
      if (!opened || opened->first.client != conn.slot.host ||
          !conn.client_key.verify(opened->first.signing_payload(),
                                  opened->second)) {
        ++stats_.bad_envelopes;
        return;
      }
      ++stats_.subscribes_in;
      service_->post([controller = controller_, req = opened->first,
                      ap = conn.slot.access_point] {
        controller->wire_subscribe(req, ap);
      });
      return;
    }
    case inband::Tag::AuthReply: {
      const auto parsed = inband::parse_auth_reply(packet);
      if (!parsed || parsed->first.client != conn.slot.host ||
          !conn.client_key.verify(parsed->first.signing_payload(),
                                  parsed->second)) {
        ++stats_.bad_envelopes;
        return;
      }
      ++stats_.auth_replies_in;
      service_->post([controller = controller_, reply = parsed->first,
                      from = conn.slot.access_point] {
        controller->wire_auth_reply(reply, from);
      });
      return;
    }
    default:
      ++stats_.bad_frames;  // downstream-only tag arriving upstream
      return;
  }
}

void WireServer::send_frame(IoThread& t, Connection& conn,
                            util::Bytes payload) {
  ++stats_.frames_out;
  conn.outq.push_back(encode_frame(payload));
  flush(t, conn);
}

void WireServer::flush(IoThread& t, Connection& conn) {
  while (!conn.outq.empty()) {
    // Coalesce queued frames into one writev (the per-wakeup batch).
    iovec iov[16];
    int iovcnt = 0;
    std::size_t offset = conn.out_offset;
    for (auto it = conn.outq.begin(); it != conn.outq.end() && iovcnt < 16;
         ++it) {
      iov[iovcnt].iov_base = it->data() + offset;
      iov[iovcnt].iov_len = it->size() - offset;
      offset = 0;
      ++iovcnt;
    }
    const ssize_t n = ::writev(conn.fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          t.poller.mod(conn.fd, /*write=*/true);
        }
        return;
      }
      if (errno == EINTR) continue;
      close_connection(t, conn);
      return;
    }
    ++stats_.flushes;
    stats_.bytes_out += static_cast<std::uint64_t>(n);
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      util::Bytes& front = conn.outq.front();
      const std::size_t remaining = front.size() - conn.out_offset;
      if (left < remaining) {
        conn.out_offset += left;
        left = 0;
      } else {
        left -= remaining;
        conn.out_offset = 0;
        conn.outq.pop_front();
      }
    }
  }
  if (conn.want_write) {
    conn.want_write = false;
    t.poller.mod(conn.fd, /*write=*/false);
  }
  if (conn.close_after_flush) close_connection(t, conn);
}

void WireServer::close_connection(IoThread& t, Connection& conn) {
  const int fd = conn.fd;
  const std::uint64_t id = conn.id;
  t.poller.del(fd);
  ::close(fd);
  ++stats_.connections_closed;
  if (const auto slot = sessions_.release(id)) {
    // A dead socket must never wedge a sweep: unsubscribe everything this
    // session owned and cancel its in-flight evaluations.
    ++stats_.evictions;
    service_->post([controller = controller_, host = slot->host] {
      controller->evict_client(host);
    });
  }
  t.fd_of.erase(id);
  t.conns.erase(fd);  // destroys conn — must be last
}

}  // namespace rvaas::net
