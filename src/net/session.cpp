#include "net/session.hpp"

namespace rvaas::net {

SessionTable::SessionTable(std::vector<WireSlot> slots)
    : slots_(std::move(slots)), owner_(slots_.size()) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    by_host_[slots_[i].host.value] = i;
    by_port_[slots_[i].access_point] = i;
  }
}

std::size_t SessionTable::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::size_t SessionTable::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_conn_.size();
}

WelcomeStatus SessionTable::claim(std::uint32_t requested_host,
                                  std::uint64_t conn, WireSlot* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (by_conn_.contains(conn)) return WelcomeStatus::BadHello;  // double HELLO
  std::size_t index = slots_.size();
  if (requested_host != 0) {
    const auto it = by_host_.find(requested_host);
    if (it == by_host_.end()) return WelcomeStatus::BadHello;
    if (owner_[it->second].has_value()) return WelcomeStatus::SlotTaken;
    index = it->second;
  } else {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!owner_[i].has_value()) {
        index = i;
        break;
      }
    }
    if (index == slots_.size()) return WelcomeStatus::NoFreeSlot;
  }
  owner_[index] = conn;
  by_conn_[conn] = index;
  *out = slots_[index];
  return WelcomeStatus::Ok;
}

std::optional<WireSlot> SessionTable::release(std::uint64_t conn) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_conn_.find(conn);
  if (it == by_conn_.end()) return std::nullopt;
  const std::size_t index = it->second;
  owner_[index] = std::nullopt;
  by_conn_.erase(it);
  return slots_[index];
}

std::optional<std::uint64_t> SessionTable::owner_of_host(
    sdn::HostId client) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_host_.find(client.value);
  if (it == by_host_.end()) return std::nullopt;
  return owner_[it->second];
}

std::optional<std::uint64_t> SessionTable::owner_of_port(
    sdn::PortRef ap) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_port_.find(ap);
  if (it == by_port_.end()) return std::nullopt;
  return owner_[it->second];
}

}  // namespace rvaas::net
