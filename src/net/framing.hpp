#pragma once
// Wire framing for the RVaaS TCP front-end. A connection is a stream of
// frames, each `4-byte big-endian length || payload`; the payload is one
// wire message — a session handshake (HELLO/WELCOME) or an INBAND message
// carrying a serialized sdn::Packet whose payload is an existing in-band
// codec envelope (RVQ1/RVS1/RVR1 upstream, RVP1/RVN1/RVA1 downstream). The
// sealed/signed envelopes are reused verbatim, so the socket layer adds
// transport, not trust: a compromised wire still cannot forge or read
// queries any more than a compromised provider could.
//
// Robustness contract (mirrors the codec layer): a length claim above
// kMaxFrameBytes or of zero is rejected BEFORE any allocation proportional
// to it, and the incremental decoder tolerates arbitrary segmentation
// (1-byte reads, split length prefixes) without copying more than one
// frame's worth of buffered bytes.

#include <cstdint>
#include <optional>

#include "controlplane/routing.hpp"
#include "crypto/bignum.hpp"
#include "crypto/sign.hpp"
#include "enclave/attestation.hpp"
#include "sdn/header.hpp"
#include "util/bytes.hpp"

namespace rvaas::net {

/// Hard bound on one frame's payload. Codec envelopes are a few KiB; the
/// headroom covers large TransferSummary replies, never a DoS allocation.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;  // 1 MiB
inline constexpr std::size_t kFrameLengthBytes = 4;

/// Wire message tags (first 4 payload bytes, ByteWriter little-endian like
/// every codec tag; only the frame length prefix is big-endian).
enum class WireTag : std::uint32_t {
  Hello = 0x52564831,    // "RVH1" — client -> server session handshake
  Welcome = 0x52565731,  // "RVW1" — server -> client slot assignment
  Inband = 0x52564631,   // "RVF1" — serialized sdn::Packet, either direction
};

/// Prepends the length prefix. ensure()s the payload fits the frame bound —
/// outbound frames are produced by our own codecs, so an oversize here is a
/// programming error, not input.
util::Bytes encode_frame(std::span<const std::uint8_t> payload);

/// Incremental frame decoder. Feed bytes as they arrive; take() yields
/// complete frame payloads in order. A bogus length claim (0 or >
/// kMaxFrameBytes) poisons the decoder (the stream is unrecoverable — close
/// the connection); no allocation proportional to the claim ever happens.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Appends raw stream bytes. Returns false (and sets poisoned()) on a
  /// bogus length claim; the decoder then ignores all further input.
  bool feed(std::span<const std::uint8_t> data);

  /// Next complete frame payload, if any.
  std::optional<util::Bytes> take();

  bool poisoned() const { return poisoned_; }
  /// Bytes currently buffered (tests pin the no-allocation-on-claim bound).
  std::size_t buffered() const { return buffer_.size() + frame_.size(); }

 private:
  std::size_t max_frame_;
  bool poisoned_ = false;
  /// Length-prefix accumulator (< 4 bytes) while between frames.
  util::Bytes buffer_;
  /// Current frame body accumulator once the length is known.
  util::Bytes frame_;
  std::size_t expected_ = 0;  ///< 0 = reading the length prefix
  std::vector<util::Bytes> ready_;
};

// --- wire messages ---

/// Session handshake: the connecting client offers its public keys; the
/// server assigns a free host slot and enrolls them (register_client), so
/// the in-band auth/subscribe machinery works unchanged for wire sessions.
struct WireHello {
  std::uint32_t version = 1;
  crypto::VerifyKey client_key;
  crypto::BigUInt client_box_pub;
  /// Preferred host slot; 0 = any free slot.
  std::uint32_t requested_host = 0;

  util::Bytes encode() const;
  static std::optional<WireHello> decode(std::span<const std::uint8_t> frame);
};

enum class WelcomeStatus : std::uint8_t {
  Ok = 0,
  NoFreeSlot,
  BadHello,
  SlotTaken,
};

/// Slot assignment + everything the client needs to run the in-band
/// protocols: its address, its access point, and the RVaaS enclave identity
/// (keys + attestation quote + the IAS root to verify it against — the root
/// rides the wire for tooling convenience; a production client pins it
/// out of band instead of trusting first use).
struct WireWelcome {
  WelcomeStatus status = WelcomeStatus::Ok;
  sdn::HostId host{};
  control::HostAddress address;
  sdn::PortRef access_point{};
  crypto::VerifyKey rvaas_key;
  crypto::BigUInt rvaas_box_pub;
  enclave::Quote quote;
  crypto::VerifyKey ias_root;
  std::string enclave_name;
  std::string enclave_version;

  util::Bytes encode() const;
  static std::optional<WireWelcome> decode(
      std::span<const std::uint8_t> frame);
};

/// Wraps a serialized in-band packet as an INBAND wire frame payload.
util::Bytes encode_inband(const sdn::Packet& packet);
/// Opens an INBAND frame payload; nullopt on tag mismatch or malformed
/// packet bytes (never throws).
std::optional<sdn::Packet> decode_inband(std::span<const std::uint8_t> frame);

/// The tag of a frame payload, if it carries a known one.
std::optional<WireTag> peek_tag(std::span<const std::uint8_t> frame);

}  // namespace rvaas::net
