#include "net/service.hpp"

#include <chrono>

#include "util/ensure.hpp"

namespace rvaas::net {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

}  // namespace

WireService::~WireService() { stop(); }

void WireService::start() {
  std::lock_guard<std::mutex> lock(mu_);
  util::ensure(!running_, "WireService already started");
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void WireService::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_one();
  thread_.join();
  std::deque<std::function<void()>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
    leftovers.swap(queue_);
  }
  // Post-stop drain: closures may pin sessions or evictions that the
  // front-end still expects to happen; they run with frozen sim time.
  for (auto& fn : leftovers) fn();
}

bool WireService::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void WireService::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) {
      queue_.push_back(std::move(fn));
      cv_.notify_one();
      return;
    }
  }
  fn();  // stopped: execute inline (frozen time) rather than drop
}

void WireService::run() {
  const Clock::time_point base_real = Clock::now();
  const sim::Time base_sim = loop_->now();

  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Injections first: a posted request should enter the controller before
    // the loop burns wall-clock catching up on timers.
    while (!queue_.empty()) {
      auto fn = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      fn();
      lock.lock();
    }
    if (stop_requested_) return;

    lock.unlock();
    // Catch the simulation up to the wall clock (1 ns sim = 1 ns real).
    const sim::Time target = base_sim + elapsed_ns(base_real);
    loop_->run_until(target);

    // Sleep exactly until the next due event — or a post()/stop() wake.
    const auto next = loop_->next_event_time();
    lock.lock();
    if (!queue_.empty() || stop_requested_) continue;
    if (!next) {
      cv_.wait(lock, [this] { return !queue_.empty() || stop_requested_; });
      continue;
    }
    const sim::Time due = *next > target ? *next - target : 0;
    cv_.wait_for(lock, std::chrono::nanoseconds(due),
                 [this] { return !queue_.empty() || stop_requested_; });
  }
}

}  // namespace rvaas::net
