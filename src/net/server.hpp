#pragma once
// WireServer: the non-blocking TCP front-end that puts RvaasController on a
// real wire. An acceptor plus N I/O threads (epoll on Linux, poll(2)
// elsewhere) own the sockets; each connection runs a small state machine
// (AwaitHello -> Active) over length-framed wire messages (net/framing.hpp).
//
// Division of labour per query:
//   I/O thread:      framing, envelope open/verify (the enclave's
//                    open/verify/sign are const pure bignum math, so the
//                    per-query asymmetric crypto runs off the controller
//                    thread and scales with --io-threads),
//   service thread:  admission, evaluation, auth bookkeeping — via
//                    WireService::post, FIFO per session,
//   I/O thread:      outbound sign+seal and batched (writev) flushes, fed
//                    through a per-thread mailbox by the WireTransport
//                    hooks.
//
// A dead socket releases its slot and posts evict_client: its subscriptions
// are unsubscribed and in-flight evaluations cancelled, so it can never
// wedge a monitor sweep. Lifetime: stop() the server before destroying the
// controller or stopping the service.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/service.hpp"
#include "net/session.hpp"
#include "rvaas/controller.hpp"

namespace rvaas::net {

namespace inband = core::inband;

struct WireServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via port() after start().
  std::uint16_t port = 0;
  std::size_t io_threads = 1;
  /// Inbound frame bound (a length claim above this closes the connection
  /// before any allocation).
  std::size_t max_frame = kMaxFrameBytes;
};

class WireServer : public core::RvaasController::WireTransport {
 public:
  /// `ias_root` is the attestation root the WELCOME advertises; `slots` are
  /// the host identities wire clients may claim; `seed` derives the
  /// per-I/O-thread sealing rngs.
  WireServer(WireServerConfig config, core::RvaasController& controller,
             WireService& service, crypto::VerifyKey ias_root,
             std::vector<WireSlot> slots, std::uint64_t seed);
  /// Calls stop().
  ~WireServer() override;

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds, listens, attaches the controller's wire transport and spawns
  /// the I/O threads.
  void start();
  /// Detaches the transport, closes every connection (evicting its
  /// sessions) and joins the I/O threads. Safe to call twice.
  void stop();

  std::uint16_t port() const { return port_; }
  const SessionTable& sessions() const { return sessions_; }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t flushes = 0;        ///< writev calls (batching ratio =
                                      ///< frames_out / flushes)
    std::uint64_t bad_frames = 0;     ///< poisoned streams + undecodable
    std::uint64_t bad_hellos = 0;
    std::uint64_t bad_envelopes = 0;  ///< open/verify failures on I/O threads
    std::uint64_t requests_in = 0;
    std::uint64_t subscribes_in = 0;
    std::uint64_t auth_replies_in = 0;
    std::uint64_t replies_out = 0;
    std::uint64_t notifications_out = 0;
    std::uint64_t auth_requests_out = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

  // --- WireTransport (service thread) ---
  bool deliver_reply(sdn::HostId client,
                     const core::QueryReply& reply) override;
  bool deliver_notification(sdn::HostId client,
                            const core::Notification& notification) override;
  bool deliver_auth_request(sdn::PortRef target,
                            const inband::AuthRequest& req) override;

 private:
  struct Connection;
  struct IoThread;
  struct Outbound;

  void io_run(IoThread& t, bool is_acceptor);
  void accept_ready(IoThread& t);
  void adopt(IoThread& t, int fd);
  void process_mailbox(IoThread& t);
  void handle_read(IoThread& t, Connection& conn);
  void handle_frame(IoThread& t, Connection& conn,
                    std::span<const std::uint8_t> frame);
  void handle_hello(IoThread& t, Connection& conn,
                    std::span<const std::uint8_t> frame);
  void handle_inband(IoThread& t, Connection& conn, const sdn::Packet& packet);
  void send_frame(IoThread& t, Connection& conn, util::Bytes payload);
  void flush(IoThread& t, Connection& conn);
  void close_connection(IoThread& t, Connection& conn);
  void enqueue_outbound(std::uint64_t conn_id, Outbound out);

  WireServerConfig config_;
  core::RvaasController* controller_;
  WireService* service_;
  crypto::VerifyKey ias_root_;
  SessionTable sessions_;
  std::uint64_t seed_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::vector<std::unique_ptr<IoThread>> io_threads_;

  /// WELCOME identity fields, fixed at construction (quote() signs once).
  WireWelcome welcome_template_;

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> bad_frames{0};
    std::atomic<std::uint64_t> bad_hellos{0};
    std::atomic<std::uint64_t> bad_envelopes{0};
    std::atomic<std::uint64_t> requests_in{0};
    std::atomic<std::uint64_t> subscribes_in{0};
    std::atomic<std::uint64_t> auth_replies_in{0};
    std::atomic<std::uint64_t> replies_out{0};
    std::atomic<std::uint64_t> notifications_out{0};
    std::atomic<std::uint64_t> auth_requests_out{0};
    std::atomic<std::uint64_t> evictions{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace rvaas::net
