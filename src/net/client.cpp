#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "crypto/hmac.hpp"

namespace rvaas::net {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

}  // namespace

WireClient::WireClient(WireClientConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      key_(crypto::SigningKey::generate(rng_)),
      box_(crypto::BoxOpener::generate(rng_)) {}

WireClient::~WireClient() { close(); }

void WireClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  hello_done_ = false;
}

WelcomeStatus WireClient::connect() {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return WelcomeStatus::BadHello;
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.server.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close();
    return WelcomeStatus::BadHello;
  }

  WireHello hello;
  hello.client_key = key_.verify_key();
  hello.client_box_pub = box_.public_element();
  hello.requested_host = config_.requested_host;
  if (!send_frame(hello.encode())) {
    close();
    return WelcomeStatus::BadHello;
  }

  const auto frame = read_frame(10'000);
  const auto welcome =
      frame ? WireWelcome::decode(*frame) : std::nullopt;
  if (!welcome) {
    close();
    return WelcomeStatus::BadHello;
  }
  if (welcome->status != WelcomeStatus::Ok) {
    close();
    return welcome->status;
  }
  if (config_.verify_attestation) {
    // Same checks as ClientAgent::verify_attestation: authentic quote, the
    // expected code measurement, report data binding exactly these keys.
    if (!enclave::AttestationService::verify(
            welcome->quote, welcome->ias_root,
            enclave::measure_code(config_.enclave_name,
                                  config_.enclave_version)) ||
        !crypto::digest_equal(
            enclave::bind_keys(welcome->rvaas_key, welcome->rvaas_box_pub),
            welcome->quote.report.report_data)) {
      close();
      return WelcomeStatus::BadHello;
    }
  }
  host_ = welcome->host;
  address_ = welcome->address;
  access_point_ = welcome->access_point;
  rvaas_key_ = welcome->rvaas_key;
  rvaas_box_pub_ = welcome->rvaas_box_pub;
  next_request_id_ = (static_cast<std::uint64_t>(host_.value) << 32) | 1;
  hello_done_ = true;
  return WelcomeStatus::Ok;
}

bool WireClient::send_raw(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool WireClient::send_frame(std::span<const std::uint8_t> payload) {
  return send_raw(encode_frame(payload));
}

std::optional<util::Bytes> WireClient::read_frame(int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (auto frame = decoder_.take()) return frame;
    if (decoder_.poisoned() || fd_ < 0) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const int left = remaining_ms(deadline);
    if (left == 0) return std::nullopt;
    const int ready = ::poll(&pfd, 1, left);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) return std::nullopt;  // timeout or error
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      return std::nullopt;
    }
    if (!decoder_.feed({buf, static_cast<std::size_t>(n)})) return std::nullopt;
  }
}

bool WireClient::consume(const sdn::Packet& packet, Event* out_event) {
  const auto tag = core::inband::classify(packet);
  if (!tag || !rvaas_key_) return false;

  if (*tag == core::inband::Tag::AuthRequest) {
    const auto req = core::inband::verify_auth_request(packet, *rvaas_key_);
    if (!req) return false;
    core::inband::AuthReply reply;
    reply.request_id = req->request_id;
    reply.nonce = req->nonce;
    reply.client = host_;
    ++stats_.auth_requests_answered;
    send_frame(
        encode_inband(core::inband::make_auth_reply(address_, reply, key_)));
    return false;
  }

  if (*tag == core::inband::Tag::Notify) {
    const auto opened = core::inband::open_notify(packet, box_, *rvaas_key_);
    if (!opened) {
      ++stats_.bad_notifications;
      return false;
    }
    const core::Notification& n = opened->notification;
    const auto it = subscriptions_.find(n.subscription_id);
    if (it == subscriptions_.end()) return false;
    Subscription& sub = it->second;
    if (!opened->signature_ok || n.sequence <= sub.last_sequence ||
        n.property_fingerprint != sub.property.fingerprint()) {
      ++stats_.bad_notifications;  // forged, replayed, or wrong property
      return false;
    }
    sub.last_sequence = n.sequence;
    ++stats_.notifications_received;
    Event event;
    event.subscription_id = n.subscription_id;
    event.kind = n.kind;
    event.sequence = n.sequence;
    event.epoch = n.epoch;
    event.reply = n.reply;
    event.verdict = core::evaluate_reply(n.reply, sub.property.expect);
    *out_event = std::move(event);
    return true;
  }

  return false;  // Reply frames are matched by the query() loop directly
}

WireClient::Outcome WireClient::query(const core::Query& query,
                                      int timeout_ms) {
  Outcome outcome;
  if (!connected()) {
    outcome.timed_out = true;
    return outcome;
  }
  core::QueryRequest request;
  request.request_id = next_request_id_++;
  request.client = host_;
  request.query = query;
  ++stats_.queries_sent;
  if (!send_frame(encode_inband(core::inband::make_request_packet(
          address_, request, *rvaas_box_pub_, rng_)))) {
    outcome.timed_out = true;
    return outcome;
  }

  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const auto frame = read_frame(remaining_ms(deadline));
    if (!frame) {
      ++stats_.timeouts;
      outcome.timed_out = true;
      return outcome;
    }
    const auto packet = decode_inband(*frame);
    if (!packet) continue;
    if (core::inband::classify(*packet) == core::inband::Tag::Reply) {
      const auto opened = core::inband::open_reply(*packet, box_, *rvaas_key_);
      if (!opened) {
        ++stats_.bad_replies;
        continue;
      }
      if (opened->reply.request_id != request.request_id) continue;
      ++stats_.replies_received;
      if (!opened->signature_ok) ++stats_.bad_replies;
      outcome.signature_ok = opened->signature_ok;
      outcome.reply = opened->reply;
      return outcome;
    }
    Event event;
    if (consume(*packet, &event)) event_queue_.push_back(std::move(event));
  }
}

std::uint64_t WireClient::subscribe(const core::Property& property,
                                    core::NotifyPolicy policy) {
  core::SubscribeRequest request;
  request.subscription_id = next_request_id_++;
  request.client = host_;
  request.policy = policy;
  request.property = property;
  // As in ClientAgent: the id counter doubles as the freshness clock.
  request.freshness = next_request_id_++;
  ++stats_.subscribes_sent;
  send_frame(encode_inband(core::inband::make_subscribe_packet(
      address_, request, key_, *rvaas_box_pub_, rng_)));
  subscriptions_[request.subscription_id] = Subscription{property, 0};
  return request.subscription_id;
}

void WireClient::unsubscribe(std::uint64_t subscription_id) {
  if (subscriptions_.erase(subscription_id) == 0) return;
  core::SubscribeRequest request;
  request.subscription_id = subscription_id;
  request.client = host_;
  request.unsubscribe = true;
  request.freshness = next_request_id_++;
  ++stats_.unsubscribes_sent;
  send_frame(encode_inband(core::inband::make_subscribe_packet(
      address_, request, key_, *rvaas_box_pub_, rng_)));
}

std::optional<WireClient::Event> WireClient::wait_notification(
    int timeout_ms) {
  if (!event_queue_.empty()) {
    Event event = std::move(event_queue_.front());
    event_queue_.pop_front();
    return event;
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const auto frame = read_frame(remaining_ms(deadline));
    if (!frame) return std::nullopt;
    const auto packet = decode_inband(*frame);
    if (!packet) continue;
    Event event;
    if (consume(*packet, &event)) return event;
  }
}

}  // namespace rvaas::net
