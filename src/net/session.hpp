#pragma once
// Wire session table: maps live TCP connections to host slots. A slot is a
// host identity the deployment reserved for wire clients (see
// workload::ScenarioConfig::wire_hosts) — its address and access point come
// from the same provider addressing plan as every simulated host, so the
// controller cannot tell a wire session from an in-process agent.
//
// Thread-safe: I/O threads claim/release around connection lifecycle while
// the service thread resolves owners for outbound routing.

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "controlplane/routing.hpp"
#include "net/framing.hpp"
#include "sdn/header.hpp"

namespace rvaas::net {

/// One attachable host identity.
struct WireSlot {
  sdn::HostId host{};
  control::HostAddress address;
  sdn::PortRef access_point{};
};

class SessionTable {
 public:
  explicit SessionTable(std::vector<WireSlot> slots);

  std::size_t capacity() const;
  std::size_t active() const;

  /// Claims a slot for connection `conn`: the requested host id, or any
  /// free slot when `requested_host` is 0. On Ok, `*out` is the claimed
  /// slot. NoFreeSlot / SlotTaken / BadHello (unknown host id) otherwise.
  WelcomeStatus claim(std::uint32_t requested_host, std::uint64_t conn,
                      WireSlot* out);

  /// Frees whatever slot `conn` holds; returns it (for eviction) if any.
  std::optional<WireSlot> release(std::uint64_t conn);

  /// Connection currently owning `client`, if any.
  std::optional<std::uint64_t> owner_of_host(sdn::HostId client) const;
  /// Connection whose slot sits at access point `ap`, if any.
  std::optional<std::uint64_t> owner_of_port(sdn::PortRef ap) const;

 private:
  mutable std::mutex mu_;
  std::vector<WireSlot> slots_;
  /// Slot index -> owning connection (nullopt = free).
  std::vector<std::optional<std::uint64_t>> owner_;
  std::unordered_map<std::uint64_t, std::size_t> by_conn_;
  std::unordered_map<std::uint32_t, std::size_t> by_host_;
  std::unordered_map<sdn::PortRef, std::size_t> by_port_;
};

}  // namespace rvaas::net
