#pragma once
// WireService: drives a sim::EventLoop on a dedicated thread with 1:1
// real-time pacing, turning the discrete-event world (controller timers,
// pollers, auth timeouts) into a live service the TCP front-end can feed.
//
// Threading contract: the event loop, the network, the controller and every
// closure passed to post()/call() execute ONLY on the service thread. The
// front-end's I/O threads talk to the controller exclusively through
// post()ed closures; the controller talks back through WireTransport hooks
// that enqueue into the I/O threads' mailboxes — neither side ever crosses
// the boundary synchronously.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "sim/event_loop.hpp"

namespace rvaas::net {

class WireService {
 public:
  explicit WireService(sim::EventLoop& loop) : loop_(&loop) {}
  /// Calls stop().
  ~WireService();

  WireService(const WireService&) = delete;
  WireService& operator=(const WireService&) = delete;

  /// Starts the pacing thread. Simulated time advances in lockstep with the
  /// wall clock from here on (1 sim ns = 1 real ns), so every configured
  /// controller cadence (poll period, auth timeout) keeps its meaning.
  void start();

  /// Stops and joins the pacing thread. Queued closures that have not run
  /// are executed inline before returning (they may hold resources), with
  /// the loop no longer advancing.
  void stop();

  bool running() const;

  /// Enqueues `fn` for execution on the service thread (FIFO relative to
  /// other post() calls — the front-end relies on this to order a session's
  /// register_client before its first request). Thread-safe. After stop(),
  /// runs `fn` inline.
  void post(std::function<void()> fn);

  /// Runs `fn` on the service thread and waits for its result. Inline when
  /// called from the service thread itself or while stopped.
  template <typename Fn>
  auto call(Fn&& fn) -> decltype(fn()) {
    using Result = decltype(fn());
    if (!running() || on_service_thread()) return fn();
    std::packaged_task<Result()> task(std::forward<Fn>(fn));
    std::future<Result> result = task.get_future();
    post([&task] { task(); });
    return result.get();
  }

  bool on_service_thread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }

 private:
  void run();

  sim::EventLoop* loop_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace rvaas::net
