#pragma once
// WireClient: a blocking TCP client for the RVaaS wire front-end. It mirrors
// core::ClientAgent exactly — same request-id scheme ((host << 32) | counter,
// the counter doubling as the subscribe freshness clock), same envelope
// codecs, same replay/fingerprint guards on pushes — so a wire session is
// indistinguishable from an in-process agent to the controller, and replies
// are byte-identical (pinned by tests/test_net.cpp).
//
// Blocking by design: one client = one session = one thread. The bench and
// the tools run many of these in parallel; concurrency lives in the caller.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "net/framing.hpp"
#include "rvaas/inband.hpp"

namespace rvaas::net {

struct WireClientConfig {
  std::string server = "127.0.0.1";
  std::uint16_t port = 0;
  /// Host slot to claim; 0 = any free slot.
  std::uint32_t requested_host = 0;
  /// Expected enclave identity for attestation verification.
  std::string enclave_name = "rvaas";
  std::string enclave_version = "1.0";
  /// Verify the WELCOME quote before trusting the service keys. Off only
  /// for adversarial tests that talk to the socket without a real enclave.
  bool verify_attestation = true;
  /// Derives this client's signing/sealing keys.
  std::uint64_t seed = 0x5eed;
};

class WireClient {
 public:
  explicit WireClient(WireClientConfig config);
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects, handshakes and (unless disabled) verifies attestation.
  /// Returns the WELCOME status; anything but Ok leaves the client closed.
  WelcomeStatus connect();

  bool connected() const { return fd_ >= 0 && hello_done_; }
  void close();

  /// This session's assigned identity (valid after a successful connect()).
  sdn::HostId host() const { return host_; }
  sdn::PortRef access_point() const { return access_point_; }

  struct Outcome {
    bool timed_out = false;
    bool signature_ok = false;
    std::optional<core::QueryReply> reply;
  };
  /// One-shot query, blocking up to `timeout_ms`. Auth requests arriving
  /// while waiting are answered inline (the agent contract); notifications
  /// are buffered for wait_notification().
  Outcome query(const core::Query& query, int timeout_ms = 5000);

  /// Registers a standing subscription; returns the subscription id.
  std::uint64_t subscribe(const core::Property& property,
                          core::NotifyPolicy policy =
                              core::NotifyPolicy::VerdictEdges);
  void unsubscribe(std::uint64_t subscription_id);

  struct Event {
    std::uint64_t subscription_id = 0;
    core::NotificationKind kind = core::NotificationKind::AllClear;
    std::uint64_t sequence = 0;
    std::uint64_t epoch = 0;
    core::QueryReply reply;
    core::Verdict verdict;  ///< local re-check against the expectation
  };
  /// Next verified push (signature + replay + fingerprint checked), waiting
  /// up to `timeout_ms`. Auth requests are answered inline here too.
  std::optional<Event> wait_notification(int timeout_ms = 5000);

  /// Sends raw bytes down the socket verbatim (adversarial tests only).
  bool send_raw(std::span<const std::uint8_t> bytes);

  struct Stats {
    std::uint64_t queries_sent = 0;
    std::uint64_t replies_received = 0;
    std::uint64_t bad_replies = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t auth_requests_answered = 0;
    std::uint64_t subscribes_sent = 0;
    std::uint64_t unsubscribes_sent = 0;
    std::uint64_t notifications_received = 0;
    std::uint64_t bad_notifications = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Pumps the socket until a frame is complete or the deadline passes.
  std::optional<util::Bytes> read_frame(int timeout_ms);
  bool send_frame(std::span<const std::uint8_t> payload);
  /// Handles one inbound inband packet. Fills `out_event` (and returns
  /// true) for a surfaced notification; answers auth requests inline.
  bool consume(const sdn::Packet& packet, Event* out_event);

  WireClientConfig config_;
  util::Rng rng_;
  crypto::SigningKey key_;
  crypto::BoxOpener box_;

  int fd_ = -1;
  bool hello_done_ = false;
  FrameDecoder decoder_;

  sdn::HostId host_{};
  control::HostAddress address_;
  sdn::PortRef access_point_{};
  std::optional<crypto::VerifyKey> rvaas_key_;
  std::optional<crypto::BigUInt> rvaas_box_pub_;

  struct Subscription {
    core::Property property;
    std::uint64_t last_sequence = 0;
  };
  std::map<std::uint64_t, Subscription> subscriptions_;
  std::deque<Event> event_queue_;  ///< pushes that arrived during query()
  std::uint64_t next_request_id_ = 0;
  Stats stats_;
};

}  // namespace rvaas::net
