#include "attacks/attacks.hpp"

#include <limits>

#include "util/ensure.hpp"

namespace rvaas::attacks {

using control::ProviderController;
using sdn::Field;
using sdn::FlowMod;
using sdn::HostId;
using sdn::Match;
using sdn::PortRef;
using sdn::SwitchId;

namespace {

constexpr std::uint16_t kAttackPriority = 30;  // above provider routing
// The multi-domain attacks must outrank the AS-world baseline inter-domain
// routing (priorities 40-50, workload/as_world.cpp) the way kAttackPriority
// outranks tenant routing.
constexpr std::uint16_t kInterDomainAttackPriority = 60;

/// Synthetic address for an attacker endpoint behind a rogue port.
control::HostAddress rogue_address(PortRef port) {
  return control::HostAddressing::derive(
      HostId(0x00900000u | (port.sw.value << 8) | port.port.value));
}

sdn::FlowMod delete_mod(sdn::FlowEntryId id) {
  FlowMod del;
  del.command = sdn::FlowModCommand::Delete;
  del.target = id;
  return del;
}

}  // namespace

void Attack::inject(ProviderController& provider, SwitchId sw,
                    const sdn::FlowMod& mod) {
  // The sink is shared with the callback: the flow-mod result arrives a
  // control-channel round trip later, possibly after the attack object died.
  auto sink = installed_;
  provider.handle().flow_mod(
      sw, mod, [sink, sw](SwitchId, const sdn::FlowModResult& result) {
        if (result.ok() && result.id) sink->emplace_back(sw, *result.id);
      });
}

void Attack::revert(ProviderController& provider, sdn::Network& /*net*/) {
  for (const auto& [sw, id] : *installed_) {
    provider.handle().flow_mod(sw, delete_mod(id));
  }
  installed_->clear();
}

std::optional<AttackRecord> ExfiltrationAttack::launch(
    ProviderController& provider, sdn::Network& net) {
  const auto victim_ports = net.topology().host_ports(victim_);
  if (victim_ports.empty()) return std::nullopt;
  const PortRef victim_ap = victim_ports.front();

  const auto dark = net.topology().dark_ports(victim_ap.sw);
  if (dark.empty()) return std::nullopt;
  const PortRef hidden = dark.front();

  // Clone the victim's installed ingress rule toward `peer_`, adding a copy
  // to the hidden port.
  for (const control::InstalledRoute& route : provider.routes()) {
    if (route.src != victim_ || route.dst != peer_) continue;
    const std::uint32_t dst_ip = provider.addressing().of(peer_).ip;

    FlowMod mod;
    mod.priority = kAttackPriority;
    mod.cookie = 0xe4f1;
    mod.match = Match().in_port(victim_ap.port).exact(Field::IpDst, dst_ip);
    // Copy first (pre-rewrite header), then forward normally.
    mod.actions = {sdn::output(hidden.port)};
    const auto tenant = provider.tenant_of(victim_);
    if (route.path.hops.empty()) {
      mod.actions.push_back(sdn::DecTtlAction{});
      mod.actions.push_back(sdn::output(route.path.egress.port));
    } else {
      if (tenant) mod.actions.push_back(sdn::PushVlanAction{tenant->vlan});
      mod.actions.push_back(sdn::DecTtlAction{});
      mod.actions.push_back(sdn::output(route.path.hops.front().out.port));
    }
    inject(provider, victim_ap.sw, mod);

    AttackRecord record;
    record.name = name();
    record.victim = victim_;
    record.rogue_ports = {hidden};
    return record;
  }
  return std::nullopt;
}

std::optional<AttackRecord> JoinAttack::launch(ProviderController& provider,
                                               sdn::Network& net) {
  const auto tenant = provider.tenant_of(victim_);
  if (!tenant) return std::nullopt;
  const auto victim_ports = net.topology().host_ports(victim_);
  if (victim_ports.empty()) return std::nullopt;
  const PortRef victim_ap = victim_ports.front();

  const control::HostAddress attacker_addr = rogue_address(attacker_port_);
  const std::uint32_t victim_ip = provider.addressing().of(victim_).ip;

  // Forward direction: make the attacker port reachable from the victim.
  const auto route =
      control::compute_route(net.topology(), victim_ap, attacker_port_);
  if (!route) return std::nullopt;

  // Ingress at the victim's switch.
  {
    FlowMod mod;
    mod.priority = kAttackPriority;
    mod.cookie = 0x301e;
    mod.match =
        Match().in_port(victim_ap.port).exact(Field::IpDst, attacker_addr.ip);
    if (route->hops.empty()) {
      mod.actions = {sdn::DecTtlAction{}, sdn::output(attacker_port_.port)};
    } else {
      mod.actions = {sdn::PushVlanAction{tenant->vlan}, sdn::DecTtlAction{},
                     sdn::output(route->hops.front().out.port)};
    }
    inject(provider, victim_ap.sw, mod);
  }
  // Core + egress along the route.
  for (std::size_t i = 0; i < route->hops.size(); ++i) {
    const SwitchId sw = route->hops[i].in.sw;
    FlowMod mod;
    mod.priority = kAttackPriority;
    mod.cookie = 0x301e;
    mod.match = Match()
                    .exact(Field::Vlan, tenant->vlan)
                    .exact(Field::IpDst, attacker_addr.ip);
    if (i + 1 < route->hops.size()) {
      mod.actions = {sdn::DecTtlAction{},
                     sdn::output(route->hops[i + 1].out.port)};
    } else {
      mod.actions = {sdn::DecTtlAction{}, sdn::PopVlanAction{},
                     sdn::output(attacker_port_.port)};
    }
    inject(provider, sw, mod);
  }

  // Reverse direction: let the attacker inject into the tenant. The
  // provider's per-destination tree rules (vlan, ip_dst=victim) already
  // cover the core; one ingress tagging rule at the attacker port suffices.
  {
    FlowMod mod;
    mod.priority = kAttackPriority;
    mod.cookie = 0x301e;
    mod.match =
        Match().in_port(attacker_port_.port).exact(Field::IpDst, victim_ip);
    mod.actions = {sdn::PushVlanAction{tenant->vlan}, sdn::DecTtlAction{}};
    // Kick the packet toward the victim using the reverse of `route`'s first
    // hop if the attacker sits on a different switch.
    if (attacker_port_.sw == victim_ap.sw) {
      mod.actions.pop_back();  // no tag needed on-switch
      mod.actions = {sdn::DecTtlAction{}, sdn::output(victim_ap.port)};
    } else {
      mod.actions.push_back(sdn::output(route->hops.back().in.port));
    }
    inject(provider, attacker_port_.sw, mod);
  }

  AttackRecord record;
  record.name = name();
  record.victim = victim_;
  record.rogue_ports = {attacker_port_};
  return record;
}

std::optional<AttackRecord> GeoDiversionAttack::launch(
    ProviderController& provider, sdn::Network& net) {
  const auto tenant = provider.tenant_of(src_);
  if (!tenant) return std::nullopt;
  const auto src_ports = net.topology().host_ports(src_);
  const auto dst_ports = net.topology().host_ports(dst_);
  if (src_ports.empty() || dst_ports.empty()) return std::nullopt;

  const auto route = control::compute_route_via(
      net.topology(), src_ports.front(), dst_ports.front(), waypoint_);
  if (!route) return std::nullopt;

  const std::uint32_t src_ip = provider.addressing().of(src_).ip;
  const std::uint32_t dst_ip = provider.addressing().of(dst_).ip;

  // Flow-scoped (ip_src, ip_dst) rules along the detour. Every hop rule is
  // additionally in-port-scoped: a detour that doubles back visits switches
  // twice, entering through different ports each time.
  {
    FlowMod mod;
    mod.priority = kAttackPriority;
    mod.cookie = 0x6e0d;
    mod.match = Match()
                    .in_port(src_ports.front().port)
                    .exact(Field::IpSrc, src_ip)
                    .exact(Field::IpDst, dst_ip);
    if (route->hops.empty()) {
      mod.actions = {sdn::DecTtlAction{}, sdn::output(route->egress.port)};
    } else {
      mod.actions = {sdn::PushVlanAction{tenant->vlan}, sdn::DecTtlAction{},
                     sdn::output(route->hops.front().out.port)};
    }
    inject(provider, route->ingress.sw, mod);
  }
  for (std::size_t i = 0; i < route->hops.size(); ++i) {
    const SwitchId sw = route->hops[i].in.sw;
    FlowMod mod;
    mod.priority = kAttackPriority;
    mod.cookie = 0x6e0d;
    mod.match = Match()
                    .in_port(route->hops[i].in.port)
                    .exact(Field::Vlan, tenant->vlan)
                    .exact(Field::IpSrc, src_ip)
                    .exact(Field::IpDst, dst_ip);
    if (i + 1 < route->hops.size()) {
      mod.actions = {sdn::DecTtlAction{},
                     sdn::output(route->hops[i + 1].out.port)};
    } else {
      mod.actions = {sdn::DecTtlAction{}, sdn::PopVlanAction{},
                     sdn::output(route->egress.port)};
    }
    inject(provider, sw, mod);
  }

  AttackRecord record;
  record.name = name();
  record.victim = src_;
  record.detour = route->switches();
  return record;
}

std::optional<AttackRecord> IsolationBreachAttack::launch(
    ProviderController& provider, sdn::Network& net) {
  const auto from_tenant = provider.tenant_of(from_);
  const auto to_tenant = provider.tenant_of(to_);
  if (!from_tenant || !to_tenant || from_tenant->id == to_tenant->id) {
    return std::nullopt;
  }
  const auto from_ports = net.topology().host_ports(from_);
  if (from_ports.empty()) return std::nullopt;
  const PortRef from_ap = from_ports.front();
  const std::uint32_t to_ip = provider.addressing().of(to_).ip;

  // One ingress rule tags the foreign tenant's VLAN; the victim tenant's
  // per-destination tree rules carry the packet the rest of the way.
  FlowMod mod;
  mod.priority = kAttackPriority;
  mod.cookie = 0x150b;
  mod.match = Match().in_port(from_ap.port).exact(Field::IpDst, to_ip);
  mod.actions = {sdn::PushVlanAction{to_tenant->vlan}, sdn::DecTtlAction{}};
  // If the target is on the same switch, forward directly.
  const auto to_ports = net.topology().host_ports(to_);
  if (!to_ports.empty() && to_ports.front().sw == from_ap.sw) {
    mod.actions = {sdn::DecTtlAction{}, sdn::output(to_ports.front().port)};
  } else {
    const auto route =
        control::compute_route(net.topology(), from_ap, to_ports.front());
    if (!route || route->hops.empty()) return std::nullopt;
    mod.actions.push_back(sdn::output(route->hops.front().out.port));
  }
  inject(provider, from_ap.sw, mod);

  AttackRecord record;
  record.name = name();
  record.victim = to_;
  record.rogue_ports = {from_ap};
  return record;
}

void ReconfigFlappingAttack::try_install(
    const std::shared_ptr<FlapState>& s) {
  s->pending.reset();
  sim::EventLoop& loop = s->net->loop();
  if (s->stopped || loop.now() + s->dwell > s->stop_after) return;

  const sim::Time installed_at = loop.now();
  s->provider->handle().flow_mod(
      s->sw, s->rule,
      [s, installed_at](SwitchId, const sdn::FlowModResult& result) {
        if (!result.ok() || !result.id) return;
        if (s->stopped) {
          // Stopped while the install was in flight: the rule briefly hit
          // the switch — remove it right away and record the sliver.
          s->windows.emplace_back(installed_at, s->net->loop().now());
          s->provider->handle().flow_mod(s->sw, delete_mod(*result.id));
          return;
        }
        ++s->cycles;
        s->windows.emplace_back(installed_at, installed_at + s->dwell);
        s->current = *result.id;
        s->pending = s->net->loop().schedule_after(
            s->dwell, [s] { remove_current(s); });
      });
}

void ReconfigFlappingAttack::remove_current(
    const std::shared_ptr<FlapState>& s) {
  s->pending.reset();
  if (!s->current) return;
  s->provider->handle().flow_mod(s->sw, delete_mod(*s->current));
  s->current.reset();

  sim::EventLoop& loop = s->net->loop();
  const sim::Time next = s->windows.back().first + s->period;
  if (!s->stopped && next > loop.now()) {
    s->pending = loop.schedule_at(next, [s] { try_install(s); });
  }
}

void ReconfigFlappingAttack::stop_now(const std::shared_ptr<FlapState>& s) {
  if (s->stopped) return;
  s->stopped = true;
  sim::EventLoop& loop = s->net->loop();
  if (s->stop_event) {
    loop.cancel(*s->stop_event);
    s->stop_event.reset();
  }
  if (s->pending) {
    loop.cancel(*s->pending);
    s->pending.reset();
  }
  if (s->current) {
    // A dwell straddling the deadline: delete the rule now and close the
    // open window at the stop instant instead of its planned end.
    s->provider->handle().flow_mod(s->sw, delete_mod(*s->current));
    s->current.reset();
    auto& window = s->windows.back();
    window.second = std::min(window.second, loop.now());
  }
}

std::optional<AttackRecord> ReconfigFlappingAttack::launch(
    ProviderController& provider, sdn::Network& net, sim::Time stop_after) {
  util::ensure(dwell_ < period_, "dwell must be shorter than the period");
  if (state_ && !state_->stopped) return std::nullopt;  // already cycling
  const auto victim_ports = net.topology().host_ports(victim_);
  if (victim_ports.empty()) return std::nullopt;
  const PortRef victim_ap = victim_ports.front();
  const auto dark = net.topology().dark_ports(victim_ap.sw);

  // The transient malicious rule: clone victim ingress traffic to a dark
  // port (or blackhole it when no dark port exists).
  FlowMod rule;
  rule.priority = kAttackPriority;
  rule.cookie = 0xf1a9;
  rule.match = Match().in_port(victim_ap.port);
  if (!dark.empty()) {
    rule.actions = {sdn::output(dark.front().port)};
  } else {
    rule.actions = {sdn::drop()};
  }

  state_ = std::make_shared<FlapState>();
  state_->provider = &provider;
  state_->net = &net;
  state_->sw = victim_ap.sw;
  state_->rule = std::move(rule);
  state_->dwell = dwell_;
  state_->period = period_;
  state_->stop_after = stop_after;
  if (stop_after != std::numeric_limits<sim::Time>::max()) {
    state_->stop_event = net.loop().schedule_at(
        std::max(stop_after, net.loop().now()),
        [s = state_] { stop_now(s); });
  }
  try_install(state_);

  AttackRecord record;
  record.name = name();
  record.victim = victim_;
  if (!dark.empty()) record.rogue_ports = {dark.front()};
  return record;
}

std::optional<AttackRecord> ReconfigFlappingAttack::launch(
    ProviderController& provider, sdn::Network& net) {
  // Unbounded: cycles until revert().
  return launch(provider, net, std::numeric_limits<sim::Time>::max());
}

void ReconfigFlappingAttack::revert(ProviderController& provider,
                                    sdn::Network& net) {
  if (state_) stop_now(state_);
  Attack::revert(provider, net);  // nothing recorded via inject(); harmless
}

std::optional<AttackRecord> QuerySuppressionAttack::launch(
    ProviderController& provider, sdn::Network& /*net*/) {
  // Hijack the magic request port with a max-priority drop. The switch
  // accepts it (it is a new provider-owned rule, not a modification of the
  // RVaaS rule); newest-wins tie-breaking puts it in front.
  FlowMod mod;
  mod.priority = 0xffff;
  mod.cookie = 0x5bbe;
  mod.match = Match()
                  .exact(Field::IpProto, sdn::kIpProtoUdp)
                  .exact(Field::L4Dst, sdn::kPortRvaasRequest);
  mod.actions = {sdn::drop()};
  inject(provider, at_, mod);

  AttackRecord record;
  record.name = name();
  return record;
}

std::optional<AttackRecord> RouteOriginHijackAttack::launch(
    ProviderController& provider, sdn::Network& net) {
  const auto sink_ports = net.topology().host_ports(sink_);
  if (sink_ports.empty()) return std::nullopt;
  const PortRef sink_ap = sink_ports.front();

  const auto route = control::compute_route(net.topology(), ingress_, sink_ap);
  if (!route) return std::nullopt;

  // In-port-chained IpDst-exact rules along the path (untagged: inter-domain
  // traffic does not ride tenant VLANs).
  {
    FlowMod mod;
    mod.priority = kInterDomainAttackPriority;
    mod.cookie = 0x041a;
    mod.match = Match().in_port(ingress_.port).exact(Field::IpDst, foreign_ip_);
    mod.actions = {sdn::DecTtlAction{},
                   sdn::output(route->hops.empty()
                                   ? sink_ap.port
                                   : route->hops.front().out.port)};
    inject(provider, ingress_.sw, mod);
  }
  for (std::size_t i = 0; i < route->hops.size(); ++i) {
    FlowMod mod;
    mod.priority = kInterDomainAttackPriority;
    mod.cookie = 0x041a;
    mod.match = Match()
                    .in_port(route->hops[i].in.port)
                    .exact(Field::IpDst, foreign_ip_);
    mod.actions = {sdn::DecTtlAction{},
                   sdn::output(i + 1 < route->hops.size()
                                   ? route->hops[i + 1].out.port
                                   : sink_ap.port)};
    inject(provider, route->hops[i].in.sw, mod);
  }

  AttackRecord record;
  record.name = name();
  record.victim = sink_;
  record.rogue_ports = {sink_ap};
  record.detour = route->switches();
  return record;
}

std::optional<AttackRecord> RouteLeakAttack::launch(
    ProviderController& provider, sdn::Network& net) {
  if (ingress_ == out_border_) return std::nullopt;
  const auto route =
      control::compute_route(net.topology(), ingress_, out_border_);
  if (!route) return std::nullopt;

  {
    FlowMod mod;
    mod.priority = kInterDomainAttackPriority;
    mod.cookie = 0x1ea2;
    mod.match = Match().in_port(ingress_.port).exact(Field::IpDst, dst_ip_);
    mod.actions = {sdn::DecTtlAction{},
                   sdn::output(route->hops.empty()
                                   ? out_border_.port
                                   : route->hops.front().out.port)};
    inject(provider, ingress_.sw, mod);
  }
  for (std::size_t i = 0; i < route->hops.size(); ++i) {
    FlowMod mod;
    mod.priority = kInterDomainAttackPriority;
    mod.cookie = 0x1ea2;
    mod.match =
        Match().in_port(route->hops[i].in.port).exact(Field::IpDst, dst_ip_);
    mod.actions = {sdn::DecTtlAction{},
                   sdn::output(i + 1 < route->hops.size()
                                   ? route->hops[i + 1].out.port
                                   : out_border_.port)};
    inject(provider, route->hops[i].in.sw, mod);
  }

  AttackRecord record;
  record.name = name();
  record.rogue_ports = {out_border_};
  record.detour = route->switches();
  return record;
}

}  // namespace rvaas::attacks
