#pragma once
// Attack injectors modeling the paper's threat (§III): an external attacker
// who compromised the provider's management system / control plane. Every
// attack acts THROUGH the provider controller's authenticated channels —
// the attacker has exactly the provider's capabilities, nothing more (it
// cannot touch switches directly, remove RVaaS-owned rules, or forge RVaaS
// keys).
//
// Each injector returns a ground-truth record so experiments can score
// detection without peeking at detector internals, and implements the
// common Attack interface so schedules (src/testing) can install and remove
// any attack class mid-run.

#include <memory>
#include <string>

#include "controlplane/provider.hpp"

namespace rvaas::attacks {

/// Ground truth about an injected attack. The concrete (switch, entry)
/// pairs live on the Attack object (installed() below) — flow-mod results
/// are asynchronous, so they are not known when launch() returns.
struct AttackRecord {
  std::string name;
  sdn::HostId victim{};                     ///< whose traffic is affected
  std::vector<sdn::PortRef> rogue_ports;    ///< illegitimate endpoints created
  std::vector<sdn::SwitchId> detour;        ///< switches traffic now crosses
};

/// Common interface over the six attack classes: install through the
/// provider's authenticated channel, and remove again (the attacker covering
/// its tracks, or a randomized schedule restoring the baseline mid-run).
class Attack {
 public:
  virtual ~Attack() = default;

  virtual const char* name() const = 0;

  /// Installs the attack. Returns nullopt when the preconditions do not
  /// hold (no dark port, unknown tenant, no route via the waypoint, ...);
  /// a nullopt launch installs nothing and revert() is a no-op.
  virtual std::optional<AttackRecord> launch(
      control::ProviderController& provider, sdn::Network& net) = 0;

  /// Deletes every rule the attack installed, through the same provider
  /// channel. Idempotent. Flow-mod results are asynchronous (control-channel
  /// round trip), so callers mutating mid-simulation should let the loop
  /// settle between launch and revert — entries whose install result has not
  /// landed yet cannot be deleted and would leak.
  virtual void revert(control::ProviderController& provider,
                      sdn::Network& net);

  /// (switch, entry) pairs confirmed installed so far. Complete only after
  /// the control-channel round trips settled.
  const std::vector<std::pair<sdn::SwitchId, sdn::FlowEntryId>>& installed()
      const {
    return *installed_;
  }

 protected:
  /// flow_mod through the provider, recording the installed entry id once
  /// the asynchronous result lands. The recording sink is shared with the
  /// in-flight callback, so destroying the attack first is safe.
  void inject(control::ProviderController& provider, sdn::SwitchId sw,
              const sdn::FlowMod& mod);

 private:
  std::shared_ptr<std::vector<std::pair<sdn::SwitchId, sdn::FlowEntryId>>>
      installed_ = std::make_shared<
          std::vector<std::pair<sdn::SwitchId, sdn::FlowEntryId>>>();
};

/// Clones a victim's flow to a hidden port: the classic exfiltration attack.
/// Adds a higher-priority copy of the victim's ingress rule whose action list
/// additionally outputs to a dark port on the same switch.
class ExfiltrationAttack : public Attack {
 public:
  ExfiltrationAttack(sdn::HostId victim, sdn::HostId peer)
      : victim_(victim), peer_(peer) {}

  const char* name() const override { return "exfiltration"; }

  /// Returns nullopt if no dark port exists on the victim's ingress switch.
  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

 private:
  sdn::HostId victim_;
  sdn::HostId peer_;
};

/// Join attack (§IV.B.1): secretly connect an attacker-controlled access
/// point into a tenant's isolation domain by installing routes from the
/// victim's header space toward the attacker's port.
class JoinAttack : public Attack {
 public:
  JoinAttack(sdn::HostId victim, sdn::PortRef attacker_port)
      : victim_(victim), attacker_port_(attacker_port) {}

  const char* name() const override { return "join-attack"; }

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

 private:
  sdn::HostId victim_;
  sdn::PortRef attacker_port_;
};

/// Geo-diversion (§IV.B.2): reroute a victim flow through a waypoint switch
/// in a different jurisdiction, leaving endpoints untouched.
class GeoDiversionAttack : public Attack {
 public:
  GeoDiversionAttack(sdn::HostId src, sdn::HostId dst, sdn::SwitchId waypoint)
      : src_(src), dst_(dst), waypoint_(waypoint) {}

  const char* name() const override { return "geo-diversion"; }

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

 private:
  sdn::HostId src_;
  sdn::HostId dst_;
  sdn::SwitchId waypoint_;
};

/// Isolation breach: route traffic from a host in tenant A to a host in
/// tenant B (crossing isolation domains).
class IsolationBreachAttack : public Attack {
 public:
  IsolationBreachAttack(sdn::HostId from, sdn::HostId to)
      : from_(from), to_(to) {}

  const char* name() const override { return "isolation-breach"; }

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

 private:
  sdn::HostId from_;
  sdn::HostId to_;
};

/// Short-term reconfiguration ("flapping") attack (§IV.A): install a
/// malicious rule, keep it for `dwell`, remove it, repeat every `period`.
/// Tests the polling-discipline claim (experiment E3).
class ReconfigFlappingAttack : public Attack {
 public:
  ReconfigFlappingAttack(sdn::HostId victim, sim::Time period, sim::Time dwell)
      : victim_(victim), period_(period), dwell_(dwell) {}

  const char* name() const override { return "reconfig-flapping"; }

  /// Starts the install/remove cycle on the event loop; runs until
  /// `stop_after` (simulated time). At `stop_after` the attack force-stops:
  /// a rule whose dwell straddles the deadline is deleted and its window
  /// closed at the deadline. One sliver remains inherent to the
  /// asynchronous control channel: an install whose confirmation is still
  /// in flight at the deadline is deleted the moment it lands, one control
  /// round trip later, and its (sub-millisecond) window is recorded
  /// truthfully — i.e. ending past `stop_after`. Returns the static
  /// description.
  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net, sim::Time stop_after);

  /// Attack-interface variant: cycles until revert().
  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

  /// Stops the cycle immediately: cancels the pending install/remove timer,
  /// deletes the rule if currently installed, and closes the open window.
  void revert(control::ProviderController& provider,
              sdn::Network& net) override;

  std::uint64_t cycles_run() const { return state_ ? state_->cycles : 0; }
  /// true while the install/remove cycle is still scheduled (launched and
  /// neither stop_after nor revert() has fired).
  bool cycling() const { return state_ && !state_->stopped; }
  /// Time windows [install, remove) during which the rule was present. All
  /// windows are closed once the attack stopped (stop_after or revert()).
  const std::vector<std::pair<sim::Time, sim::Time>>& windows() const {
    static const std::vector<std::pair<sim::Time, sim::Time>> kEmpty;
    return state_ ? state_->windows : kEmpty;
  }

 private:
  /// Cycle state, shared with in-flight control-channel callbacks and loop
  /// events so the attack object may be destroyed while they are pending.
  struct FlapState {
    control::ProviderController* provider = nullptr;
    sdn::Network* net = nullptr;
    sdn::SwitchId sw{};
    sdn::FlowMod rule;
    sim::Time dwell = 0;
    sim::Time period = 0;
    sim::Time stop_after = 0;
    bool stopped = false;
    std::optional<sdn::FlowEntryId> current;  ///< rule installed right now
    std::optional<sim::EventId> pending;      ///< next install/remove timer
    std::optional<sim::EventId> stop_event;
    std::uint64_t cycles = 0;
    std::vector<std::pair<sim::Time, sim::Time>> windows;
  };

  static void try_install(const std::shared_ptr<FlapState>& s);
  static void remove_current(const std::shared_ptr<FlapState>& s);
  static void stop_now(const std::shared_ptr<FlapState>& s);

  sdn::HostId victim_;
  sim::Time period_;
  sim::Time dwell_;
  std::shared_ptr<FlapState> state_;
};

/// Query-suppression: hijack the RVaaS in-band request traffic (magic UDP
/// port) with a higher-priority provider drop rule. RVaaS cannot prevent
/// this; the client detects it by reply timeout.
class QuerySuppressionAttack : public Attack {
 public:
  explicit QuerySuppressionAttack(sdn::SwitchId at) : at_(at) {}

  const char* name() const override { return "query-suppression"; }

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

 private:
  sdn::SwitchId at_;
};

/// Route-origin hijack (multi-domain, §IV.C.a extension): the compromised
/// provider of one domain delivers traffic for a FOREIGN prefix (another
/// domain's address space) to a local sink host — the data-plane analogue
/// of originating someone else's prefix. A PolicyCompliance walk entering
/// at `ingress` flags the delivery as unauthorized-origin.
class RouteOriginHijackAttack : public Attack {
 public:
  /// `foreign_ip`: a destination outside the domain's authorized origin
  /// space; `ingress`: the border (or access) port whose traffic is
  /// hijacked; `sink`: the local host the traffic is delivered to.
  RouteOriginHijackAttack(std::uint32_t foreign_ip, sdn::PortRef ingress,
                          sdn::HostId sink)
      : foreign_ip_(foreign_ip), ingress_(ingress), sink_(sink) {}

  const char* name() const override { return "route-origin-hijack"; }

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

 private:
  std::uint32_t foreign_ip_;
  sdn::PortRef ingress_;
  sdn::HostId sink_;
};

/// Route leak (multi-domain): traffic learned at a provider/peer `ingress`
/// is forwarded out another provider/peer border — a Gao-Rexford valley.
/// A PolicyCompliance walk entering at `ingress` flags the crossing at
/// `out_border` as a route-leak.
class RouteLeakAttack : public Attack {
 public:
  RouteLeakAttack(sdn::PortRef ingress, sdn::PortRef out_border,
                  std::uint32_t dst_ip)
      : ingress_(ingress), out_border_(out_border), dst_ip_(dst_ip) {}

  const char* name() const override { return "route-leak"; }

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net) override;

 private:
  sdn::PortRef ingress_;
  sdn::PortRef out_border_;
  std::uint32_t dst_ip_;
};

}  // namespace rvaas::attacks
