#pragma once
// Attack injectors modeling the paper's threat (§III): an external attacker
// who compromised the provider's management system / control plane. Every
// attack acts THROUGH the provider controller's authenticated channels —
// the attacker has exactly the provider's capabilities, nothing more (it
// cannot touch switches directly, remove RVaaS-owned rules, or forge RVaaS
// keys).
//
// Each injector returns a ground-truth record so experiments can score
// detection without peeking at detector internals.

#include <string>

#include "controlplane/provider.hpp"

namespace rvaas::attacks {

/// Ground truth about an injected attack.
struct AttackRecord {
  std::string name;
  sdn::HostId victim{};                     ///< whose traffic is affected
  std::vector<sdn::PortRef> rogue_ports;    ///< illegitimate endpoints created
  std::vector<sdn::SwitchId> detour;        ///< switches traffic now crosses
  std::vector<std::pair<sdn::SwitchId, sdn::FlowEntryId>> injected_entries;
};

/// Clones a victim's flow to a hidden port: the classic exfiltration attack.
/// Adds a higher-priority copy of the victim's ingress rule whose action list
/// additionally outputs to a dark port on the same switch.
class ExfiltrationAttack {
 public:
  ExfiltrationAttack(sdn::HostId victim, sdn::HostId peer)
      : victim_(victim), peer_(peer) {}

  /// Returns nullopt if no dark port exists on the victim's ingress switch.
  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net);

 private:
  sdn::HostId victim_;
  sdn::HostId peer_;
};

/// Join attack (§IV.B.1): secretly connect an attacker-controlled access
/// point into a tenant's isolation domain by installing routes from the
/// victim's header space toward the attacker's port.
class JoinAttack {
 public:
  JoinAttack(sdn::HostId victim, sdn::PortRef attacker_port)
      : victim_(victim), attacker_port_(attacker_port) {}

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net);

 private:
  sdn::HostId victim_;
  sdn::PortRef attacker_port_;
};

/// Geo-diversion (§IV.B.2): reroute a victim flow through a waypoint switch
/// in a different jurisdiction, leaving endpoints untouched.
class GeoDiversionAttack {
 public:
  GeoDiversionAttack(sdn::HostId src, sdn::HostId dst, sdn::SwitchId waypoint)
      : src_(src), dst_(dst), waypoint_(waypoint) {}

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net);

 private:
  sdn::HostId src_;
  sdn::HostId dst_;
  sdn::SwitchId waypoint_;
};

/// Isolation breach: route traffic from a host in tenant A to a host in
/// tenant B (crossing isolation domains).
class IsolationBreachAttack {
 public:
  IsolationBreachAttack(sdn::HostId from, sdn::HostId to)
      : from_(from), to_(to) {}

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net);

 private:
  sdn::HostId from_;
  sdn::HostId to_;
};

/// Short-term reconfiguration ("flapping") attack (§IV.A): install a
/// malicious rule, keep it for `dwell`, remove it, repeat every `period`.
/// Tests the polling-discipline claim (experiment E3).
class ReconfigFlappingAttack {
 public:
  ReconfigFlappingAttack(sdn::HostId victim, sim::Time period, sim::Time dwell)
      : victim_(victim), period_(period), dwell_(dwell) {}

  /// Starts the install/remove cycle on the event loop; runs until
  /// `stop_after` (simulated time). Returns the static description.
  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net, sim::Time stop_after);

  std::uint64_t cycles_run() const { return cycles_; }
  /// Time windows [install, remove) during which the rule was present.
  const std::vector<std::pair<sim::Time, sim::Time>>& windows() const {
    return windows_;
  }

 private:
  void schedule_cycle(control::ProviderController& provider, sdn::Network& net,
                      sdn::SwitchId sw, sdn::FlowMod rule, sim::Time stop_after);

  sdn::HostId victim_;
  sim::Time period_;
  sim::Time dwell_;
  std::uint64_t cycles_ = 0;
  std::vector<std::pair<sim::Time, sim::Time>> windows_;
};

/// Query-suppression: hijack the RVaaS in-band request traffic (magic UDP
/// port) with a higher-priority provider drop rule. RVaaS cannot prevent
/// this; the client detects it by reply timeout.
class QuerySuppressionAttack {
 public:
  explicit QuerySuppressionAttack(sdn::SwitchId at) : at_(at) {}

  std::optional<AttackRecord> launch(control::ProviderController& provider,
                                     sdn::Network& net);

 private:
  sdn::SwitchId at_;
};

}  // namespace rvaas::attacks
