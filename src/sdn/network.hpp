#pragma once
// The simulated network: topology + switch instances + host NICs +
// authenticated controller channels, all driven by the discrete-event loop.
//
// Two execution modes:
//  * Event-driven: host_send / packet_out / flow_mod schedule real message
//    exchanges with link, processing and control-channel latencies — used by
//    the protocol experiments (Fig. 1/2 reproduction).
//  * Functional: trace() walks a packet through the data plane instantly —
//    the ground truth that HSA-based logical verification is tested against.

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "crypto/sign.hpp"
#include "sdn/control_channel.hpp"
#include "sdn/fault_plane.hpp"
#include "sdn/switch.hpp"
#include "sdn/topology.hpp"
#include "sim/event_loop.hpp"
#include "util/rng.hpp"

namespace rvaas::sdn {

struct NetworkConfig {
  sim::Time switch_proc_delay = 2 * sim::kMicrosecond;
  sim::Time control_latency = 200 * sim::kMicrosecond;  ///< per direction
  bool enforce_meters = true;  ///< event-driven path only
  std::size_t max_hops = 256;  ///< event-driven loop guard per packet
};

/// One switch-local step of a packet's walk through the network.
struct TrajectoryHop {
  PortRef in;
  PortRef out;

  bool operator==(const TrajectoryHop&) const = default;
};

/// A copy of the packet leaving the network at an egress port.
struct TrajectoryDelivery {
  PortRef egress;
  std::optional<HostId> host;  ///< nullopt = dark port (unplugged)
  Packet packet;
  std::vector<TrajectoryHop> path;
};

/// Ground-truth result of a functional walk.
struct Trajectory {
  std::vector<TrajectoryDelivery> deliveries;
  std::vector<PacketIn> punts;
  bool loop_detected = false;
  bool ttl_expired = false;
  std::size_t hop_count = 0;

  /// Hosts that received a copy.
  std::vector<HostId> reached_hosts() const;
  /// Set of switches traversed by any copy.
  std::vector<SwitchId> traversed_switches() const;
};

class Network {
 public:
  Network(sim::EventLoop& loop, Topology topology, NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const { return topo_; }
  sim::EventLoop& loop() { return loop_; }
  const NetworkConfig& config() const { return config_; }

  SwitchSim& switch_sim(SwitchId id);
  const SwitchSim& switch_sim(SwitchId id) const;

  // --- bootstrap configuration (trusted, before any attack) ---

  /// Authorizes a controller certificate on every switch.
  void authorize_controller_key(const crypto::KeyId& key);
  /// Authorizes on a single switch.
  void authorize_controller_key(SwitchId sw, const crypto::KeyId& key);

  /// Per-controller view of the control plane.
  class ControllerHandle {
   public:
    /// Switches this controller successfully authenticated to.
    std::vector<SwitchId> switches() const;
    bool connected(SwitchId sw) const;

    void flow_mod(SwitchId sw, const FlowMod& mod, FlowModCallback cb = {});
    void meter_mod(SwitchId sw, const MeterMod& mod);
    void packet_out(const PacketOut& msg);
    void request_stats(SwitchId sw, StatsCallback cb);
    /// Subscribes to flow-table change notifications from a switch.
    void subscribe_flow_monitor(SwitchId sw);

    ControllerId controller_id() const { return id_; }

   private:
    friend class Network;
    ControllerHandle(Network& net, ControllerId id, sim::Time latency)
        : net_(&net), id_(id), latency_(latency) {}

    Network* net_;
    ControllerId id_;
    sim::Time latency_;
  };

  /// Attaches a controller; performs the signed handshake against every
  /// switch. Switches where the key is not authorized refuse the channel.
  ControllerHandle& attach_controller(Controller& controller,
                                      const crypto::SigningKey& key);
  ControllerHandle& attach_controller(Controller& controller,
                                      const crypto::SigningKey& key,
                                      sim::Time latency);

  // --- host side ---

  using HostReceiver = std::function<void(PortRef, const Packet&)>;
  /// Multiple receivers per host are allowed (e.g. a client agent plus a
  /// measurement tool); each delivery fans out to all of them.
  void register_host_receiver(HostId host, HostReceiver receiver);

  /// Sends a packet from a host's NIC into its access point.
  void host_send(HostId host, PortRef access_point, const Packet& packet);

  // --- functional ground truth ---

  /// Walks a packet injected at `ingress` (a switch in-port) through the
  /// data plane instantly. Does not consume meter tokens.
  Trajectory trace(PortRef ingress, const Packet& packet,
                   std::size_t max_hops = 256);

  /// Convenience: trace from a host's access point.
  Trajectory trace_from_host(HostId host, const Packet& packet,
                             std::size_t max_hops = 256);

  // --- observability ---

  struct Counters {
    std::uint64_t data_hops = 0;
    std::uint64_t host_deliveries = 0;
    std::uint64_t dark_deliveries = 0;
    std::uint64_t table_miss_drops = 0;
    std::uint64_t metered_drops = 0;
    std::uint64_t ttl_drops = 0;
    std::uint64_t loop_drops = 0;
    std::uint64_t packet_ins = 0;
    std::uint64_t packet_outs = 0;
    std::uint64_t flow_mods = 0;
    std::uint64_t meter_mods = 0;
    std::uint64_t stats_requests = 0;
    std::uint64_t flow_update_events = 0;
    std::uint64_t rejected_handshakes = 0;
  };
  const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = Counters{}; }

  // --- fault injection (tests / fuzzer / benches) ---

  /// Interposes a FaultPlane on the monitoring-plane messages (flow/meter
  /// mods, stats request/reply, flow-monitor updates) of the controller the
  /// plane is scoped to. Other controllers and the in-band packet path
  /// (packet_out / packet_in) are unaffected. Pass nullptr to detach. The
  /// plane must outlive the network or be detached first.
  void set_fault_plane(FaultPlane* plane) { fault_plane_ = plane; }
  FaultPlane* fault_plane() { return fault_plane_; }

 private:
  struct ControllerSlot {
    Controller* controller = nullptr;
    sim::Time latency = 0;
    std::map<SwitchId, bool> authenticated;
    std::unique_ptr<ControllerHandle> handle;
  };

  ControllerSlot& slot_of(ControllerId id);
  /// The attached fault plane when it is scoped to `id`, else nullptr.
  FaultPlane* fault_plane_for(ControllerId id) {
    return fault_plane_ && fault_plane_->scoped_to(id) ? fault_plane_
                                                       : nullptr;
  }
  /// Delivers a packet arriving at a switch in-port (event-driven).
  void deliver_to_switch(PortRef in, Packet packet, std::size_t hops_left);
  /// Routes pipeline outputs onward (event-driven).
  void route_outputs(SwitchId sw, const PipelineOutput& out,
                     std::size_t hops_left);
  void dispatch_punt(const PacketIn& punt);

  sim::EventLoop& loop_;
  Topology topo_;
  NetworkConfig config_;
  std::map<SwitchId, std::unique_ptr<SwitchSim>> switches_;
  std::map<SwitchId, std::vector<crypto::KeyId>> authorized_keys_;
  std::map<HostId, std::vector<HostReceiver>> receivers_;
  std::vector<std::unique_ptr<ControllerSlot>> slots_;
  util::Rng handshake_rng_{0x44a5};
  Counters counters_;
  FaultPlane* fault_plane_ = nullptr;
};

}  // namespace rvaas::sdn
