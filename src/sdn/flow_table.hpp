#pragma once
// Priority flow table with per-entry controller ownership.
//
// Ownership models the paper's trust split: switches are trusted and
// initially configured correctly, and sessions are authenticated, so a
// compromised provider controller cannot modify or delete entries installed
// by the RVaaS controller (it can still install its own rules at any
// priority — RVaaS *detects*, it does not prevent).

#include <cstdint>
#include <optional>
#include <vector>

#include "sdn/action.hpp"
#include "sdn/match.hpp"
#include "sdn/types.hpp"

namespace rvaas::sdn {

struct FlowEntry {
  FlowEntryId id{};         ///< assigned by the table on insertion
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;  ///< opaque controller-chosen tag
  Match match;
  ActionList actions;
  std::optional<MeterId> meter;
  ControllerId owner{};

  bool operator==(const FlowEntry&) const = default;
};

class FlowTable {
 public:
  /// Inserts a new entry and assigns its id.
  const FlowEntry& add(FlowEntry entry);

  /// Highest-priority matching entry (ties broken toward the newer
  /// installation, deterministically). nullptr on table miss.
  const FlowEntry* lookup(const HeaderFields& hdr, PortNo in_port) const;

  const FlowEntry* find(FlowEntryId id) const;

  /// Removes by id; returns the removed entry if present.
  std::optional<FlowEntry> remove(FlowEntryId id);

  /// Replaces actions/meter of an entry, keeping id/priority/match.
  bool modify(FlowEntryId id, ActionList actions, std::optional<MeterId> meter);

  /// Entries sorted by (priority desc, id desc) — match order.
  const std::vector<FlowEntry>& entries() const { return entries_; }

  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<FlowEntry> entries_;  // kept sorted in match order
  std::uint64_t next_id_ = 1;
};

}  // namespace rvaas::sdn
