#pragma once
// Packet header model. A fixed set of match-relevant fields (the OpenFlow
// 1.0-style 9-tuple minus physical port, which is handled separately) with a
// canonical bit layout shared with the HSA engine: field bit offsets below
// define positions inside the 228-bit header vector.
//
// TTL is deliberately *not* part of the header vector: it is data-plane
// state used by dec-TTL/traceroute and would poison header-space analysis
// with irrelevant dimensions. It lives on the Packet instead.

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace rvaas::sdn {

enum class Field : std::uint8_t {
  EthDst = 0,
  EthSrc,
  EthType,
  Vlan,
  IpSrc,
  IpDst,
  IpProto,
  L4Src,
  L4Dst,
};

inline constexpr std::size_t kFieldCount = 9;

struct FieldInfo {
  Field field;
  std::uint16_t offset;  ///< bit offset in the header vector
  std::uint16_t width;   ///< bits
  const char* name;
};

/// Canonical layout. Total width = 228 bits.
inline constexpr std::array<FieldInfo, kFieldCount> kFields{{
    {Field::EthDst, 0, 48, "eth_dst"},
    {Field::EthSrc, 48, 48, "eth_src"},
    {Field::EthType, 96, 16, "eth_type"},
    {Field::Vlan, 112, 12, "vlan"},
    {Field::IpSrc, 124, 32, "ip_src"},
    {Field::IpDst, 156, 32, "ip_dst"},
    {Field::IpProto, 188, 8, "ip_proto"},
    {Field::L4Src, 196, 16, "l4_src"},
    {Field::L4Dst, 212, 16, "l4_dst"},
}};

inline constexpr std::size_t kHeaderBits = 228;

constexpr const FieldInfo& field_info(Field f) {
  return kFields[static_cast<std::size_t>(f)];
}

/// All-ones mask of a field's width.
constexpr std::uint64_t field_mask(Field f) {
  const auto w = field_info(f).width;
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
}

/// Common EtherType / protocol constants used by scenarios.
inline constexpr std::uint64_t kEthTypeIpv4 = 0x0800;
inline constexpr std::uint64_t kEthTypeLldp = 0x88cc;
inline constexpr std::uint64_t kIpProtoTcp = 6;
inline constexpr std::uint64_t kIpProtoUdp = 17;

/// Well-known UDP ports of the in-band protocols (clients and RVaaS agree on
/// these a priori; the intercept rules match on them).
inline constexpr std::uint64_t kPortRvaasRequest = 22211;  ///< magic header
inline constexpr std::uint64_t kPortRvaasAuth = 22212;
inline constexpr std::uint64_t kPortRvaasReply = 22213;
inline constexpr std::uint64_t kPortTraceroute = 33434;
inline constexpr std::uint64_t kPortTracerouteReply = 33435;

/// Concrete header values.
struct HeaderFields {
  std::uint64_t eth_dst = 0;
  std::uint64_t eth_src = 0;
  std::uint64_t eth_type = kEthTypeIpv4;
  std::uint64_t vlan = 0;  ///< 0 = untagged
  std::uint64_t ip_src = 0;
  std::uint64_t ip_dst = 0;
  std::uint64_t ip_proto = kIpProtoUdp;
  std::uint64_t l4_src = 0;
  std::uint64_t l4_dst = 0;

  std::uint64_t get(Field f) const;
  /// Sets a field; value must fit in the field's width.
  void set(Field f, std::uint64_t value);

  bool operator==(const HeaderFields&) const = default;

  std::string to_string() const;

  void serialize(util::ByteWriter& w) const;
  static HeaderFields deserialize(util::ByteReader& r);
};

/// A packet: header + TTL + opaque payload.
struct Packet {
  HeaderFields hdr;
  std::uint8_t ttl = 64;
  util::Bytes payload;

  void serialize(util::ByteWriter& w) const;
  static Packet deserialize(util::ByteReader& r);
};

}  // namespace rvaas::sdn
