#pragma once
// Deterministic fault injection for the simulated control channel.
//
// A FaultPlane sits between Network::ControllerHandle and the switches it
// talks to, and perturbs the *monitoring-plane* messages of one scoped
// controller (the RVaaS verifier): stats request/reply legs, flow-monitor
// update deliveries, and the controller's own flow/meter mods. Per switch
// and per direction it can drop, duplicate and delay messages, open hard
// partition windows, and crash/restart the switch's control agent (voiding
// every in-flight reply captured before the restart).
//
// Scoping rationale: the provider's channel and the in-band client path
// (packet_out / packet_in) are deliberately NOT interposed. Faulting the
// provider would change the data-plane ground truth itself (the fuzzer's
// reference run would diverge for reasons unrelated to verifier
// robustness), and faulting the in-band channel would re-test the query
// suppression detector, which has its own attack class and oracle. What
// this plane isolates is exactly the paper's open question: what does the
// verifier *say* when its own view of a switch can go dark — and the
// answer must be "stale and flagged", never "fresh and wrong".
//
// Determinism: every decision is drawn from a seeded util::Rng, and the
// RNG is consulted ONLY when an active fault spec or partition covers the
// message's switch. An attached-but-idle plane therefore leaves the
// simulation byte-identical to an unattached one, which is what lets the
// fuzzer attach it unconditionally and the convergence oracle compare
// faulted runs against fault-free state. The optional delivery trace
// records every verdict for the determinism tests.

#include <cstdint>
#include <map>
#include <vector>

#include "sdn/types.hpp"
#include "sim/event_loop.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace rvaas::sdn {

/// Which way a control-channel message is travelling.
enum class FaultDirection : std::uint8_t {
  ToSwitch = 0,   ///< controller -> switch (requests, mods)
  FromSwitch = 1  ///< switch -> controller (replies, flow updates)
};

/// Per-switch, per-direction fault knobs. All default to "no fault".
struct FaultSpec {
  double drop_probability = 0.0;       ///< in [0, 1]
  double duplicate_probability = 0.0;  ///< in [0, 1]; second copy re-delayed
  sim::Time extra_delay_max = 0;       ///< uniform extra delay in [0, max]

  bool active() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           extra_delay_max > 0;
  }
};

class FaultPlane {
 public:
  explicit FaultPlane(std::uint64_t seed) : rng_(seed) {}

  /// Restricts the plane to one controller's channel. Messages of any other
  /// controller pass through untouched (and never consult the RNG).
  void set_scope(ControllerId id) { scope_ = id; }
  bool scoped_to(ControllerId id) const { return scope_ == id; }

  // --- fault configuration ---

  void set_fault(SwitchId sw, FaultDirection dir, const FaultSpec& spec);
  /// Clears drop/dup/delay specs on one switch (partitions stay).
  void clear_fault(SwitchId sw);
  /// Hard partition: both directions drop every message until `until`
  /// (absolute simulated time). Re-partitioning extends the window.
  void partition(SwitchId sw, sim::Time until);
  /// Crash + instant restart of the switch's control agent: every reply
  /// still in flight (captured under the old agent generation) is voided at
  /// delivery time. Standing monitor subscriptions survive the restart.
  void crash_agent(SwitchId sw);
  /// Clears every spec and partition window. Agent generations are NOT
  /// rolled back (a crash is an instantaneous past event, not a state).
  void heal_all();

  // --- delivery interposition (called by Network) ---

  /// The plane's verdict on one message send.
  struct Delivery {
    bool drop = false;
    bool duplicate = false;
    sim::Time extra_delay = 0;
  };

  /// Decides the fate of a message to/from `sw` at time `now`. Consults the
  /// RNG only when a spec or partition covers (sw, dir), so an idle plane
  /// is behaviourally invisible.
  Delivery apply(SwitchId sw, FaultDirection dir, sim::Time now);

  /// Monotonic restart counter of the switch's control agent; capture at
  /// send, compare at delivery, void the reply on mismatch.
  std::uint64_t agent_generation(SwitchId sw) const;

  /// True if any spec or unexpired partition covers the switch.
  bool faulted(SwitchId sw, sim::Time now) const;
  /// True while an unexpired partition window covers the switch.
  bool partitioned(SwitchId sw, sim::Time now) const;

  // --- determinism trace ---

  enum class TraceOutcome : std::uint8_t {
    Delivered = 0,
    Dropped = 1,
    Duplicated = 2  ///< delivered + one extra copy
  };
  struct TraceRecord {
    sim::Time at = 0;
    SwitchId sw{};
    FaultDirection dir = FaultDirection::ToSwitch;
    TraceOutcome outcome = TraceOutcome::Delivered;
    sim::Time extra_delay = 0;
  };

  void enable_trace(bool on) { trace_enabled_ = on; }
  const std::vector<TraceRecord>& trace() const { return trace_; }
  /// Serialized trace for byte-identical comparison across runs.
  util::Bytes trace_bytes() const;

  struct Stats {
    std::uint64_t decisions = 0;  ///< apply() calls with a covering fault
    std::uint64_t dropped = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t delayed = 0;
    std::uint64_t crashes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct SwitchFaults {
    FaultSpec spec[2];           ///< indexed by FaultDirection
    sim::Time partition_until = 0;
    std::uint64_t agent_generation = 0;
  };

  ControllerId scope_{};
  util::Rng rng_;
  std::map<SwitchId, SwitchFaults> faults_;
  bool trace_enabled_ = false;
  std::vector<TraceRecord> trace_;
  Stats stats_;
};

}  // namespace rvaas::sdn
