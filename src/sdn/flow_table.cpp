#include "sdn/flow_table.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace rvaas::sdn {

namespace {
// Priority descending; ties go to the NEWER entry (matching common switch
// behaviour where a re-installed overlapping rule takes effect — the
// query-suppression attack relies on this, and OpenFlow leaves it undefined).
bool match_order(const FlowEntry& a, const FlowEntry& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.id > b.id;
}
}  // namespace

const FlowEntry& FlowTable::add(FlowEntry entry) {
  entry.id = FlowEntryId(next_id_++);
  const auto pos =
      std::lower_bound(entries_.begin(), entries_.end(), entry, match_order);
  return *entries_.insert(pos, std::move(entry));
}

const FlowEntry* FlowTable::lookup(const HeaderFields& hdr,
                                   PortNo in_port) const {
  for (const FlowEntry& e : entries_) {
    if (e.match.matches(hdr, in_port)) return &e;
  }
  return nullptr;
}

const FlowEntry* FlowTable::find(FlowEntryId id) const {
  for (const FlowEntry& e : entries_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::optional<FlowEntry> FlowTable::remove(FlowEntryId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const FlowEntry& e) { return e.id == id; });
  if (it == entries_.end()) return std::nullopt;
  FlowEntry removed = std::move(*it);
  entries_.erase(it);
  return removed;
}

bool FlowTable::modify(FlowEntryId id, ActionList actions,
                       std::optional<MeterId> meter) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [id](const FlowEntry& e) { return e.id == id; });
  if (it == entries_.end()) return false;
  it->actions = std::move(actions);
  it->meter = meter;
  return true;
}

}  // namespace rvaas::sdn
