#pragma once
// The (trusted) OpenFlow switch model: priority flow table, meters, action
// pipeline, flow-monitor notifications, and per-entry controller ownership.

#include <functional>
#include <map>
#include <vector>

#include "sdn/flow_table.hpp"
#include "sdn/meter.hpp"
#include "sdn/openflow.hpp"
#include "sdn/types.hpp"
#include "sim/event_loop.hpp"

namespace rvaas::sdn {

/// Result of pushing one packet through the pipeline.
struct PipelineOutput {
  std::vector<std::pair<PortNo, Packet>> forwards;
  std::vector<PacketIn> punts;
  bool table_miss = false;
  bool metered_drop = false;
  bool ttl_expired = false;
};

class SwitchSim {
 public:
  SwitchSim(SwitchId id, std::uint32_t num_ports)
      : id_(id), num_ports_(num_ports) {}

  SwitchId id() const { return id_; }
  std::uint32_t num_ports() const { return num_ports_; }

  /// Full pipeline: table lookup, meter, actions. Table miss drops (secure
  /// default). `enforce_meters` is false for functional ground-truth walks.
  PipelineOutput process(PortNo in_port, const Packet& packet, sim::Time now,
                         bool enforce_meters);

  /// Runs an explicit action list (packet-out path; no table lookup).
  PipelineOutput run_actions(const ActionList& actions, PortNo in_port,
                             const Packet& packet, std::uint64_t cookie);

  /// Applies a FlowMod on behalf of `from` (already authenticated by the
  /// channel). Enforces per-entry ownership for Modify/Delete.
  FlowModResult apply_flow_mod(ControllerId from, const FlowMod& mod);

  bool apply_meter_mod(ControllerId from, const MeterMod& mod);

  /// Full configuration dump (active monitoring).
  StatsReply stats() const;

  const FlowTable& table() const { return table_; }
  const MeterTable& meters() const { return meters_; }

  /// Flow-monitor subscription. Callbacks fire synchronously on switch state
  /// change; the Network wraps them to model control-channel latency.
  using UpdateCallback = std::function<void(const FlowUpdate&)>;
  void subscribe_monitor(ControllerId controller, UpdateCallback cb);

 private:
  std::optional<ErrorCode> validate_actions(const ActionList& actions) const;
  void emit_update(FlowUpdateKind kind, const FlowEntry& entry);

  SwitchId id_;
  std::uint32_t num_ports_;
  FlowTable table_;
  MeterTable meters_;
  std::map<MeterId, TokenBucket> buckets_;
  std::vector<std::pair<ControllerId, UpdateCallback>> monitors_;
};

}  // namespace rvaas::sdn
