#include "sdn/control_channel.hpp"

namespace rvaas::sdn {

util::Bytes ChannelHandshake::challenge_bytes(ControllerId controller,
                                              SwitchId sw,
                                              std::uint64_t nonce) {
  util::ByteWriter w;
  w.put_string("rvaas-channel-handshake-v1");
  w.put_u32(controller.value);
  w.put_u32(sw.value);
  w.put_u64(nonce);
  return w.take();
}

bool verify_handshake(const ChannelHandshake& hs, SwitchId sw,
                      std::uint64_t nonce,
                      const std::vector<crypto::KeyId>& authorized) {
  const bool known = std::find(authorized.begin(), authorized.end(),
                               hs.key.id()) != authorized.end();
  if (!known) return false;
  return hs.key.verify(
      ChannelHandshake::challenge_bytes(hs.controller, sw, nonce), hs.proof);
}

}  // namespace rvaas::sdn
