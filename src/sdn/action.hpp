#pragma once
// OpenFlow-style actions. An action list is applied in order to a working
// copy of the packet; Output emits a copy with the header state at that
// point, so rewrite-then-forward and forward-then-rewrite differ, as in
// OpenFlow.

#include <string>
#include <variant>
#include <vector>

#include "sdn/header.hpp"
#include "sdn/types.hpp"

namespace rvaas::sdn {

struct OutputAction {
  PortNo port;
  bool operator==(const OutputAction&) const = default;
};

/// Punt the packet to the control plane (OpenFlow "output:CONTROLLER").
struct ControllerAction {
  bool operator==(const ControllerAction&) const = default;
};

/// Explicit drop: stops processing the rest of the action list.
struct DropAction {
  bool operator==(const DropAction&) const = default;
};

struct SetFieldAction {
  Field field;
  std::uint64_t value;
  bool operator==(const SetFieldAction&) const = default;
};

/// Simplified single-tag VLAN model: push sets the vlan field (no tag
/// stacking), pop clears it to 0 (untagged).
struct PushVlanAction {
  std::uint64_t vid;
  bool operator==(const PushVlanAction&) const = default;
};

struct PopVlanAction {
  bool operator==(const PopVlanAction&) const = default;
};

/// Decrement TTL; a packet whose TTL reaches 0 is dropped and reported to the
/// control plane (traceroute support).
struct DecTtlAction {
  bool operator==(const DecTtlAction&) const = default;
};

using Action = std::variant<OutputAction, ControllerAction, DropAction,
                            SetFieldAction, PushVlanAction, PopVlanAction,
                            DecTtlAction>;

using ActionList = std::vector<Action>;

std::string to_string(const Action& a);
std::string to_string(const ActionList& list);

void serialize(util::ByteWriter& w, const ActionList& list);
ActionList deserialize_actions(util::ByteReader& r);

/// Convenience constructors.
inline Action output(PortNo p) { return OutputAction{p}; }
inline Action to_controller() { return ControllerAction{}; }
inline Action drop() { return DropAction{}; }
inline Action set_field(Field f, std::uint64_t v) { return SetFieldAction{f, v}; }

}  // namespace rvaas::sdn
