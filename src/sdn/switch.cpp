#include "sdn/switch.hpp"

#include "util/ensure.hpp"

namespace rvaas::sdn {

PipelineOutput SwitchSim::process(PortNo in_port, const Packet& packet,
                                  sim::Time now, bool enforce_meters) {
  PipelineOutput out;
  const FlowEntry* entry = table_.lookup(packet.hdr, in_port);
  if (entry == nullptr) {
    out.table_miss = true;
    return out;
  }
  if (entry->meter && enforce_meters) {
    auto it = buckets_.find(*entry->meter);
    if (it == buckets_.end()) {
      const auto config = meters_.get(*entry->meter);
      util::ensure(config.has_value(), "flow entry references missing meter");
      it = buckets_.emplace(*entry->meter, TokenBucket(*config)).first;
    }
    // Approximate wire size: payload plus fixed header overhead.
    const std::uint64_t bytes = packet.payload.size() + 64;
    if (!it->second.consume(now, bytes)) {
      out.metered_drop = true;
      return out;
    }
  }
  return run_actions(entry->actions, in_port, packet, entry->cookie);
}

PipelineOutput SwitchSim::run_actions(const ActionList& actions, PortNo in_port,
                                      const Packet& packet,
                                      std::uint64_t cookie) {
  PipelineOutput out;
  Packet working = packet;
  for (const Action& action : actions) {
    bool stop = false;
    std::visit(
        [&](const auto& act) {
          using T = std::decay_t<decltype(act)>;
          if constexpr (std::is_same_v<T, OutputAction>) {
            out.forwards.emplace_back(act.port, working);
          } else if constexpr (std::is_same_v<T, ControllerAction>) {
            out.punts.push_back(PacketIn{id_, in_port, working,
                                         PacketInReason::ActionToController,
                                         cookie});
          } else if constexpr (std::is_same_v<T, DropAction>) {
            stop = true;
          } else if constexpr (std::is_same_v<T, SetFieldAction>) {
            working.hdr.set(act.field, act.value);
          } else if constexpr (std::is_same_v<T, PushVlanAction>) {
            working.hdr.set(Field::Vlan, act.vid);
          } else if constexpr (std::is_same_v<T, PopVlanAction>) {
            working.hdr.set(Field::Vlan, 0);
          } else if constexpr (std::is_same_v<T, DecTtlAction>) {
            if (working.ttl <= 1) {
              working.ttl = 0;
              out.punts.push_back(PacketIn{id_, in_port, working,
                                           PacketInReason::TtlExpired, cookie});
              out.ttl_expired = true;
              stop = true;
            } else {
              --working.ttl;
            }
          }
        },
        action);
    if (stop) break;
  }
  return out;
}

std::optional<ErrorCode> SwitchSim::validate_actions(
    const ActionList& actions) const {
  for (const Action& action : actions) {
    if (const auto* o = std::get_if<OutputAction>(&action)) {
      if (o->port.value >= num_ports_) return ErrorCode::BadPort;
    } else if (const auto* s = std::get_if<SetFieldAction>(&action)) {
      if ((s->value & ~field_mask(s->field)) != 0) return ErrorCode::BadPort;
    } else if (const auto* p = std::get_if<PushVlanAction>(&action)) {
      if (p->vid > 0xfff) return ErrorCode::BadPort;
    }
  }
  return std::nullopt;
}

FlowModResult SwitchSim::apply_flow_mod(ControllerId from, const FlowMod& mod) {
  switch (mod.command) {
    case FlowModCommand::Add: {
      if (const auto err = validate_actions(mod.actions)) {
        return FlowModResult{std::nullopt, *err};
      }
      if (mod.meter && !meters_.get(*mod.meter)) {
        return FlowModResult{std::nullopt, ErrorCode::BadPort};
      }
      FlowEntry entry;
      entry.priority = mod.priority;
      entry.cookie = mod.cookie;
      entry.match = mod.match;
      entry.actions = mod.actions;
      entry.meter = mod.meter;
      entry.owner = from;
      const FlowEntry& added = table_.add(std::move(entry));
      emit_update(FlowUpdateKind::Added, added);
      return FlowModResult{added.id, std::nullopt};
    }
    case FlowModCommand::Modify: {
      const FlowEntry* existing = table_.find(mod.target);
      if (existing == nullptr) {
        return FlowModResult{std::nullopt, ErrorCode::UnknownEntry};
      }
      if (existing->owner != from) {
        return FlowModResult{std::nullopt, ErrorCode::NotOwner};
      }
      if (const auto err = validate_actions(mod.actions)) {
        return FlowModResult{std::nullopt, *err};
      }
      table_.modify(mod.target, mod.actions, mod.meter);
      emit_update(FlowUpdateKind::Modified, *table_.find(mod.target));
      return FlowModResult{mod.target, std::nullopt};
    }
    case FlowModCommand::Delete: {
      const FlowEntry* existing = table_.find(mod.target);
      if (existing == nullptr) {
        return FlowModResult{std::nullopt, ErrorCode::UnknownEntry};
      }
      if (existing->owner != from) {
        return FlowModResult{std::nullopt, ErrorCode::NotOwner};
      }
      const auto removed = table_.remove(mod.target);
      emit_update(FlowUpdateKind::Removed, *removed);
      return FlowModResult{mod.target, std::nullopt};
    }
  }
  util::unreachable("bad FlowModCommand");
}

bool SwitchSim::apply_meter_mod(ControllerId /*from*/, const MeterMod& mod) {
  if (mod.remove) {
    buckets_.erase(mod.id);
    return meters_.erase(mod.id);
  }
  meters_.set(mod.id, mod.config);
  buckets_.erase(mod.id);  // reset runtime state on reconfiguration
  return true;
}

StatsReply SwitchSim::stats() const {
  StatsReply reply;
  reply.sw = id_;
  reply.entries = table_.entries();
  for (const auto& [id, config] : meters_.all()) {
    reply.meters.emplace_back(id, config);
  }
  return reply;
}

void SwitchSim::subscribe_monitor(ControllerId controller, UpdateCallback cb) {
  monitors_.emplace_back(controller, std::move(cb));
}

void SwitchSim::emit_update(FlowUpdateKind kind, const FlowEntry& entry) {
  FlowUpdate update{id_, kind, entry};
  for (const auto& [_, cb] : monitors_) cb(update);
}

}  // namespace rvaas::sdn
