#pragma once
// OpenFlow-style match: optional ingress-port constraint plus per-field
// masked value matches (exact, prefix, arbitrary mask, or wildcard).

#include <optional>
#include <string>
#include <vector>

#include "sdn/header.hpp"
#include "sdn/types.hpp"

namespace rvaas::sdn {

/// One field constraint: header.get(field) & mask == value.
struct FieldMatch {
  Field field;
  std::uint64_t value = 0;
  std::uint64_t mask = 0;

  bool operator==(const FieldMatch&) const = default;
};

class Match {
 public:
  /// Wildcard match (matches everything).
  Match() = default;

  Match& in_port(PortNo p);
  Match& exact(Field f, std::uint64_t value);
  /// CIDR-style prefix on a field (high `prefix_len` bits significant).
  Match& prefix(Field f, std::uint64_t value, unsigned prefix_len);
  Match& masked(Field f, std::uint64_t value, std::uint64_t mask);

  bool matches(const HeaderFields& hdr, PortNo ingress) const;
  /// Field-only part (ignores in_port); used by packet-out action matching.
  bool matches_fields(const HeaderFields& hdr) const;

  const std::optional<PortNo>& in_port() const { return in_port_; }
  const std::vector<FieldMatch>& field_matches() const { return fields_; }

  bool operator==(const Match&) const = default;

  std::string to_string() const;

  void serialize(util::ByteWriter& w) const;
  static Match deserialize(util::ByteReader& r);

 private:
  std::optional<PortNo> in_port_;
  std::vector<FieldMatch> fields_;  // at most one entry per field
};

}  // namespace rvaas::sdn
