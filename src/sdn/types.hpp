#pragma once
// Core identifier types for the SDN substrate.

#include <cstdint>
#include <functional>
#include <ostream>

#include "util/ids.hpp"

namespace rvaas::sdn {

using SwitchId = util::StrongId<struct SwitchIdTag>;
using PortNo = util::StrongId<struct PortNoTag>;
using HostId = util::StrongId<struct HostIdTag>;
using LinkId = util::StrongId<struct LinkIdTag>;
using ControllerId = util::StrongId<struct ControllerIdTag>;
using TenantId = util::StrongId<struct TenantIdTag>;
using FlowEntryId = util::StrongId<struct FlowEntryIdTag, std::uint64_t>;
using MeterId = util::StrongId<struct MeterIdTag>;

/// A specific port on a specific switch.
struct PortRef {
  SwitchId sw;
  PortNo port;

  constexpr auto operator<=>(const PortRef&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const PortRef& p) {
  return os << "s" << p.sw.value << ":p" << p.port.value;
}

}  // namespace rvaas::sdn

template <>
struct std::hash<rvaas::sdn::PortRef> {
  std::size_t operator()(const rvaas::sdn::PortRef& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.sw.value) << 32) | p.port.value);
  }
};
