#include "sdn/match.hpp"

#include <algorithm>
#include <sstream>

#include "util/ensure.hpp"

namespace rvaas::sdn {

Match& Match::in_port(PortNo p) {
  in_port_ = p;
  return *this;
}

Match& Match::exact(Field f, std::uint64_t value) {
  return masked(f, value, field_mask(f));
}

Match& Match::prefix(Field f, std::uint64_t value, unsigned prefix_len) {
  const unsigned width = field_info(f).width;
  util::ensure(prefix_len <= width, "prefix longer than field width");
  if (prefix_len == 0) return *this;  // wildcard: no constraint
  const std::uint64_t mask =
      (field_mask(f) >> (width - prefix_len)) << (width - prefix_len);
  return masked(f, value & mask, mask);
}

Match& Match::masked(Field f, std::uint64_t value, std::uint64_t mask) {
  util::ensure((mask & ~field_mask(f)) == 0, "mask exceeds field width");
  util::ensure((value & ~mask) == 0, "value has bits outside mask");
  auto it = std::find_if(fields_.begin(), fields_.end(),
                         [f](const FieldMatch& m) { return m.field == f; });
  if (it != fields_.end()) {
    *it = FieldMatch{f, value, mask};
  } else {
    fields_.push_back(FieldMatch{f, value, mask});
  }
  return *this;
}

bool Match::matches(const HeaderFields& hdr, PortNo ingress) const {
  if (in_port_ && *in_port_ != ingress) return false;
  return matches_fields(hdr);
}

bool Match::matches_fields(const HeaderFields& hdr) const {
  for (const FieldMatch& m : fields_) {
    if ((hdr.get(m.field) & m.mask) != m.value) return false;
  }
  return true;
}

std::string Match::to_string() const {
  std::ostringstream os;
  if (in_port_) os << "in_port=" << in_port_->value << " ";
  os << std::hex;
  for (const FieldMatch& m : fields_) {
    os << field_info(m.field).name << "=" << m.value << "/" << m.mask << " ";
  }
  std::string s = os.str();
  if (s.empty()) return "*";
  s.pop_back();
  return s;
}

void Match::serialize(util::ByteWriter& w) const {
  w.put_bool(in_port_.has_value());
  if (in_port_) w.put_u32(in_port_->value);
  w.put_u32(static_cast<std::uint32_t>(fields_.size()));
  for (const FieldMatch& m : fields_) {
    w.put_u8(static_cast<std::uint8_t>(m.field));
    w.put_u64(m.value);
    w.put_u64(m.mask);
  }
}

Match Match::deserialize(util::ByteReader& r) {
  Match m;
  if (r.get_bool()) m.in_port_ = PortNo(r.get_u32());
  const auto n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto f = static_cast<Field>(r.get_u8());
    if (static_cast<std::size_t>(f) >= kFieldCount) {
      throw util::DecodeError("bad field id");
    }
    const auto value = r.get_u64();
    const auto mask = r.get_u64();
    m.masked(f, value, mask);
  }
  return m;
}

}  // namespace rvaas::sdn
