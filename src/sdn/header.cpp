#include "sdn/header.hpp"

#include <sstream>

#include "util/ensure.hpp"

namespace rvaas::sdn {

std::uint64_t HeaderFields::get(Field f) const {
  switch (f) {
    case Field::EthDst:
      return eth_dst;
    case Field::EthSrc:
      return eth_src;
    case Field::EthType:
      return eth_type;
    case Field::Vlan:
      return vlan;
    case Field::IpSrc:
      return ip_src;
    case Field::IpDst:
      return ip_dst;
    case Field::IpProto:
      return ip_proto;
    case Field::L4Src:
      return l4_src;
    case Field::L4Dst:
      return l4_dst;
  }
  util::unreachable("bad Field");
}

void HeaderFields::set(Field f, std::uint64_t value) {
  util::ensure((value & ~field_mask(f)) == 0,
               std::string("value does not fit field ") + field_info(f).name);
  switch (f) {
    case Field::EthDst:
      eth_dst = value;
      return;
    case Field::EthSrc:
      eth_src = value;
      return;
    case Field::EthType:
      eth_type = value;
      return;
    case Field::Vlan:
      vlan = value;
      return;
    case Field::IpSrc:
      ip_src = value;
      return;
    case Field::IpDst:
      ip_dst = value;
      return;
    case Field::IpProto:
      ip_proto = value;
      return;
    case Field::L4Src:
      l4_src = value;
      return;
    case Field::L4Dst:
      l4_dst = value;
      return;
  }
  util::unreachable("bad Field");
}

std::string HeaderFields::to_string() const {
  std::ostringstream os;
  os << std::hex;
  for (const auto& info : kFields) {
    os << info.name << "=" << get(info.field) << " ";
  }
  std::string s = os.str();
  if (!s.empty()) s.pop_back();
  return s;
}

void HeaderFields::serialize(util::ByteWriter& w) const {
  for (const auto& info : kFields) w.put_u64(get(info.field));
}

HeaderFields HeaderFields::deserialize(util::ByteReader& r) {
  HeaderFields h;
  for (const auto& info : kFields) {
    const std::uint64_t v = r.get_u64();
    if ((v & ~field_mask(info.field)) != 0) {
      throw util::DecodeError("field value out of range");
    }
    h.set(info.field, v);
  }
  return h;
}

void Packet::serialize(util::ByteWriter& w) const {
  hdr.serialize(w);
  w.put_u8(ttl);
  w.put_bytes(payload);
}

Packet Packet::deserialize(util::ByteReader& r) {
  Packet p;
  p.hdr = HeaderFields::deserialize(r);
  p.ttl = r.get_u8();
  p.payload = r.get_bytes();
  return p;
}

}  // namespace rvaas::sdn
