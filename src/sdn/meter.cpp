#include "sdn/meter.hpp"

#include <algorithm>

namespace rvaas::sdn {

bool TokenBucket::consume(sim::Time now, std::uint64_t bytes) {
  if (now > last_refill_) {
    const double elapsed_s =
        static_cast<double>(now - last_refill_) / sim::kSecond;
    tokens_ = std::min(static_cast<double>(config_.burst_bytes),
                       tokens_ + elapsed_s * static_cast<double>(config_.rate_bps) / 8.0);
    last_refill_ = now;
  }
  const auto need = static_cast<double>(bytes);
  if (tokens_ >= need) {
    tokens_ -= need;
    return true;
  }
  return false;
}

std::optional<MeterConfig> MeterTable::get(MeterId id) const {
  const auto it = configs_.find(id);
  if (it == configs_.end()) return std::nullopt;
  return it->second;
}

}  // namespace rvaas::sdn
