#include "sdn/action.hpp"

#include <sstream>

#include "util/ensure.hpp"

namespace rvaas::sdn {

std::string to_string(const Action& a) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& act) {
        using T = std::decay_t<decltype(act)>;
        if constexpr (std::is_same_v<T, OutputAction>) {
          os << "output:" << act.port.value;
        } else if constexpr (std::is_same_v<T, ControllerAction>) {
          os << "controller";
        } else if constexpr (std::is_same_v<T, DropAction>) {
          os << "drop";
        } else if constexpr (std::is_same_v<T, SetFieldAction>) {
          os << "set:" << field_info(act.field).name << "=" << std::hex
             << act.value;
        } else if constexpr (std::is_same_v<T, PushVlanAction>) {
          os << "push_vlan:" << act.vid;
        } else if constexpr (std::is_same_v<T, PopVlanAction>) {
          os << "pop_vlan";
        } else if constexpr (std::is_same_v<T, DecTtlAction>) {
          os << "dec_ttl";
        }
      },
      a);
  return os.str();
}

std::string to_string(const ActionList& list) {
  std::string out;
  for (const Action& a : list) {
    if (!out.empty()) out += ",";
    out += to_string(a);
  }
  return out.empty() ? "(none)" : out;
}

namespace {
enum class ActionTag : std::uint8_t {
  Output = 0,
  Controller,
  Drop,
  SetField,
  PushVlan,
  PopVlan,
  DecTtl,
};
}  // namespace

void serialize(util::ByteWriter& w, const ActionList& list) {
  w.put_u32(static_cast<std::uint32_t>(list.size()));
  for (const Action& a : list) {
    std::visit(
        [&w](const auto& act) {
          using T = std::decay_t<decltype(act)>;
          if constexpr (std::is_same_v<T, OutputAction>) {
            w.put_u8(static_cast<std::uint8_t>(ActionTag::Output));
            w.put_u32(act.port.value);
          } else if constexpr (std::is_same_v<T, ControllerAction>) {
            w.put_u8(static_cast<std::uint8_t>(ActionTag::Controller));
          } else if constexpr (std::is_same_v<T, DropAction>) {
            w.put_u8(static_cast<std::uint8_t>(ActionTag::Drop));
          } else if constexpr (std::is_same_v<T, SetFieldAction>) {
            w.put_u8(static_cast<std::uint8_t>(ActionTag::SetField));
            w.put_u8(static_cast<std::uint8_t>(act.field));
            w.put_u64(act.value);
          } else if constexpr (std::is_same_v<T, PushVlanAction>) {
            w.put_u8(static_cast<std::uint8_t>(ActionTag::PushVlan));
            w.put_u64(act.vid);
          } else if constexpr (std::is_same_v<T, PopVlanAction>) {
            w.put_u8(static_cast<std::uint8_t>(ActionTag::PopVlan));
          } else if constexpr (std::is_same_v<T, DecTtlAction>) {
            w.put_u8(static_cast<std::uint8_t>(ActionTag::DecTtl));
          }
        },
        a);
  }
}

ActionList deserialize_actions(util::ByteReader& r) {
  ActionList list;
  const auto n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    switch (static_cast<ActionTag>(r.get_u8())) {
      case ActionTag::Output:
        list.push_back(OutputAction{PortNo(r.get_u32())});
        break;
      case ActionTag::Controller:
        list.push_back(ControllerAction{});
        break;
      case ActionTag::Drop:
        list.push_back(DropAction{});
        break;
      case ActionTag::SetField: {
        const auto f = static_cast<Field>(r.get_u8());
        if (static_cast<std::size_t>(f) >= kFieldCount) {
          throw util::DecodeError("bad field id in action");
        }
        list.push_back(SetFieldAction{f, r.get_u64()});
        break;
      }
      case ActionTag::PushVlan:
        list.push_back(PushVlanAction{r.get_u64()});
        break;
      case ActionTag::PopVlan:
        list.push_back(PopVlanAction{});
        break;
      case ActionTag::DecTtl:
        list.push_back(DecTtlAction{});
        break;
      default:
        throw util::DecodeError("bad action tag");
    }
  }
  return list;
}

}  // namespace rvaas::sdn
