#pragma once
// Physical network description: switches (with geographic locations), the
// trusted wiring plan (internal links), and host attachment points.
//
// Per the paper's model (§III): "Internal network ports are known, and follow
// a well-defined wiring plan" — the Topology *is* that wiring plan, and the
// RVaaS controller receives it at bootstrap.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sdn/types.hpp"
#include "sim/event_loop.hpp"

namespace rvaas::sdn {

/// Geographic placement, used by geo-location queries (§IV.B.2).
struct GeoLocation {
  double latitude = 0;
  double longitude = 0;
  std::string jurisdiction;  ///< e.g. "DE", "US", "EU-NORTH"

  bool operator==(const GeoLocation&) const = default;
};

struct LinkInfo {
  LinkId id{};
  PortRef a;
  PortRef b;
  sim::Time latency = 10 * sim::kMicrosecond;
};

class Topology {
 public:
  void add_switch(SwitchId id, std::uint32_t num_ports,
                  GeoLocation geo = {});

  /// Connects two switch ports with a bidirectional link.
  LinkId add_link(PortRef a, PortRef b,
                  sim::Time latency = 10 * sim::kMicrosecond);

  /// Attaches a host/client NIC to a switch port (an access point). A host
  /// may have multiple access points; a port holds at most one host.
  void attach_host(HostId host, PortRef port,
                   sim::Time latency = 5 * sim::kMicrosecond);

  bool has_switch(SwitchId id) const;
  std::uint32_t num_ports(SwitchId id) const;
  const GeoLocation& geo(SwitchId id) const;
  void set_geo(SwitchId id, GeoLocation geo);

  std::vector<SwitchId> switches() const;
  std::size_t switch_count() const { return switches_.size(); }
  const std::vector<LinkInfo>& links() const { return links_; }

  /// The far end of an internal link, if this port is wired.
  std::optional<PortRef> link_peer(PortRef port) const;
  sim::Time link_latency(PortRef port) const;

  std::optional<HostId> host_at(PortRef port) const;
  sim::Time host_latency(PortRef port) const;
  /// All access points of a host (empty if unknown host).
  std::vector<PortRef> host_ports(HostId host) const;
  std::vector<HostId> hosts() const;

  /// Ports of a switch wired to other switches.
  std::vector<PortRef> internal_ports(SwitchId id) const;
  /// Ports of a switch with hosts attached.
  std::vector<PortRef> access_ports(SwitchId id) const;
  /// All host-facing ports in the network.
  std::vector<PortRef> all_access_points() const;
  /// Ports that are neither wired nor host-attached (dark ports — the
  /// natural target for exfiltration/join attacks).
  std::vector<PortRef> dark_ports(SwitchId id) const;

  bool valid_port(PortRef port) const;

 private:
  struct SwitchRecord {
    std::uint32_t num_ports = 0;
    GeoLocation geo;
  };
  struct Attachment {
    HostId host;
    sim::Time latency;
  };

  std::map<SwitchId, SwitchRecord> switches_;
  std::vector<LinkInfo> links_;
  std::map<PortRef, std::size_t> link_by_port_;
  std::map<PortRef, Attachment> host_by_port_;
  std::map<HostId, std::vector<PortRef>> ports_by_host_;
};

}  // namespace rvaas::sdn
