#include "sdn/topology.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace rvaas::sdn {

void Topology::add_switch(SwitchId id, std::uint32_t num_ports,
                          GeoLocation geo) {
  util::ensure(!has_switch(id), "duplicate switch id");
  util::ensure(num_ports > 0, "switch needs at least one port");
  switches_[id] = SwitchRecord{num_ports, std::move(geo)};
}

LinkId Topology::add_link(PortRef a, PortRef b, sim::Time latency) {
  util::ensure(valid_port(a) && valid_port(b), "link endpoint does not exist");
  util::ensure(a != b, "self-link");
  util::ensure(!link_by_port_.contains(a) && !link_by_port_.contains(b),
               "port already wired");
  util::ensure(!host_by_port_.contains(a) && !host_by_port_.contains(b),
               "port already has a host");
  const LinkId id(static_cast<std::uint32_t>(links_.size()));
  links_.push_back(LinkInfo{id, a, b, latency});
  link_by_port_[a] = links_.size() - 1;
  link_by_port_[b] = links_.size() - 1;
  return id;
}

void Topology::attach_host(HostId host, PortRef port, sim::Time latency) {
  util::ensure(valid_port(port), "host port does not exist");
  util::ensure(!link_by_port_.contains(port), "port already wired");
  util::ensure(!host_by_port_.contains(port), "port already has a host");
  host_by_port_[port] = Attachment{host, latency};
  ports_by_host_[host].push_back(port);
}

bool Topology::has_switch(SwitchId id) const { return switches_.contains(id); }

std::uint32_t Topology::num_ports(SwitchId id) const {
  const auto it = switches_.find(id);
  util::ensure(it != switches_.end(), "unknown switch");
  return it->second.num_ports;
}

const GeoLocation& Topology::geo(SwitchId id) const {
  const auto it = switches_.find(id);
  util::ensure(it != switches_.end(), "unknown switch");
  return it->second.geo;
}

void Topology::set_geo(SwitchId id, GeoLocation geo) {
  const auto it = switches_.find(id);
  util::ensure(it != switches_.end(), "unknown switch");
  it->second.geo = std::move(geo);
}

std::vector<SwitchId> Topology::switches() const {
  std::vector<SwitchId> out;
  out.reserve(switches_.size());
  for (const auto& [id, _] : switches_) out.push_back(id);
  return out;
}

std::optional<PortRef> Topology::link_peer(PortRef port) const {
  const auto it = link_by_port_.find(port);
  if (it == link_by_port_.end()) return std::nullopt;
  const LinkInfo& link = links_[it->second];
  return link.a == port ? link.b : link.a;
}

sim::Time Topology::link_latency(PortRef port) const {
  const auto it = link_by_port_.find(port);
  util::ensure(it != link_by_port_.end(), "port is not wired");
  return links_[it->second].latency;
}

std::optional<HostId> Topology::host_at(PortRef port) const {
  const auto it = host_by_port_.find(port);
  if (it == host_by_port_.end()) return std::nullopt;
  return it->second.host;
}

sim::Time Topology::host_latency(PortRef port) const {
  const auto it = host_by_port_.find(port);
  util::ensure(it != host_by_port_.end(), "no host at port");
  return it->second.latency;
}

std::vector<PortRef> Topology::host_ports(HostId host) const {
  const auto it = ports_by_host_.find(host);
  if (it == ports_by_host_.end()) return {};
  return it->second;
}

std::vector<HostId> Topology::hosts() const {
  std::vector<HostId> out;
  out.reserve(ports_by_host_.size());
  for (const auto& [id, _] : ports_by_host_) out.push_back(id);
  return out;
}

std::vector<PortRef> Topology::internal_ports(SwitchId id) const {
  std::vector<PortRef> out;
  for (std::uint32_t p = 0; p < num_ports(id); ++p) {
    const PortRef port{id, PortNo(p)};
    if (link_by_port_.contains(port)) out.push_back(port);
  }
  return out;
}

std::vector<PortRef> Topology::access_ports(SwitchId id) const {
  std::vector<PortRef> out;
  for (std::uint32_t p = 0; p < num_ports(id); ++p) {
    const PortRef port{id, PortNo(p)};
    if (host_by_port_.contains(port)) out.push_back(port);
  }
  return out;
}

std::vector<PortRef> Topology::all_access_points() const {
  std::vector<PortRef> out;
  out.reserve(host_by_port_.size());
  for (const auto& [port, _] : host_by_port_) out.push_back(port);
  return out;
}

std::vector<PortRef> Topology::dark_ports(SwitchId id) const {
  std::vector<PortRef> out;
  for (std::uint32_t p = 0; p < num_ports(id); ++p) {
    const PortRef port{id, PortNo(p)};
    if (!link_by_port_.contains(port) && !host_by_port_.contains(port)) {
      out.push_back(port);
    }
  }
  return out;
}

bool Topology::valid_port(PortRef port) const {
  const auto it = switches_.find(port.sw);
  if (it == switches_.end()) return false;
  return port.port.value < it->second.num_ports;
}

}  // namespace rvaas::sdn
