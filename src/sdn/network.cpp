#include "sdn/network.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/ensure.hpp"

namespace rvaas::sdn {

std::vector<HostId> Trajectory::reached_hosts() const {
  std::vector<HostId> out;
  for (const auto& d : deliveries) {
    if (d.host && std::find(out.begin(), out.end(), *d.host) == out.end()) {
      out.push_back(*d.host);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SwitchId> Trajectory::traversed_switches() const {
  std::set<SwitchId> seen;
  for (const auto& d : deliveries) {
    for (const auto& hop : d.path) seen.insert(hop.in.sw);
  }
  return {seen.begin(), seen.end()};
}

Network::Network(sim::EventLoop& loop, Topology topology, NetworkConfig config)
    : loop_(loop), topo_(std::move(topology)), config_(config) {
  for (const SwitchId id : topo_.switches()) {
    switches_[id] = std::make_unique<SwitchSim>(id, topo_.num_ports(id));
  }
}

SwitchSim& Network::switch_sim(SwitchId id) {
  const auto it = switches_.find(id);
  util::ensure(it != switches_.end(), "unknown switch");
  return *it->second;
}

const SwitchSim& Network::switch_sim(SwitchId id) const {
  const auto it = switches_.find(id);
  util::ensure(it != switches_.end(), "unknown switch");
  return *it->second;
}

void Network::authorize_controller_key(const crypto::KeyId& key) {
  for (const SwitchId id : topo_.switches()) {
    authorize_controller_key(id, key);
  }
}

void Network::authorize_controller_key(SwitchId sw, const crypto::KeyId& key) {
  util::ensure(topo_.has_switch(sw), "unknown switch");
  auto& keys = authorized_keys_[sw];
  if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
    keys.push_back(key);
  }
}

Network::ControllerHandle& Network::attach_controller(
    Controller& controller, const crypto::SigningKey& key) {
  return attach_controller(controller, key, config_.control_latency);
}

Network::ControllerHandle& Network::attach_controller(
    Controller& controller, const crypto::SigningKey& key, sim::Time latency) {
  auto slot = std::make_unique<ControllerSlot>();
  slot->controller = &controller;
  slot->latency = latency;
  slot->handle.reset(new ControllerHandle(*this, controller.id(), latency));

  // Signed challenge handshake against every switch.
  for (const SwitchId sw : topo_.switches()) {
    const std::uint64_t nonce = handshake_rng_.next_u64();
    ChannelHandshake hs;
    hs.controller = controller.id();
    hs.key = key.verify_key();
    hs.proof =
        key.sign(ChannelHandshake::challenge_bytes(controller.id(), sw, nonce));
    const auto it = authorized_keys_.find(sw);
    const bool ok =
        it != authorized_keys_.end() && verify_handshake(hs, sw, nonce, it->second);
    slot->authenticated[sw] = ok;
    if (!ok) ++counters_.rejected_handshakes;
  }

  slots_.push_back(std::move(slot));
  return *slots_.back()->handle;
}

Network::ControllerSlot& Network::slot_of(ControllerId id) {
  for (auto& slot : slots_) {
    if (slot->controller->id() == id) return *slot;
  }
  util::unreachable("unknown controller");
}

// --- ControllerHandle ---

std::vector<SwitchId> Network::ControllerHandle::switches() const {
  std::vector<SwitchId> out;
  for (const auto& [sw, ok] : net_->slot_of(id_).authenticated) {
    if (ok) out.push_back(sw);
  }
  return out;
}

bool Network::ControllerHandle::connected(SwitchId sw) const {
  const auto& auth = net_->slot_of(id_).authenticated;
  const auto it = auth.find(sw);
  return it != auth.end() && it->second;
}

void Network::ControllerHandle::flow_mod(SwitchId sw, const FlowMod& mod,
                                         FlowModCallback cb) {
  util::ensure(connected(sw), "controller has no channel to switch");
  ++net_->counters_.flow_mods;
  Network& net = *net_;
  const ControllerId id = id_;
  const sim::Time lat = latency_;
  FaultPlane* fp = net.fault_plane_for(id_);
  // State-changing messages are dropped/delayed but never duplicated: a
  // re-applied Add would fork the data plane away from ground truth.
  const FaultPlane::Delivery req =
      fp ? fp->apply(sw, FaultDirection::ToSwitch, net.loop_.now())
         : FaultPlane::Delivery{};
  if (req.drop) return;
  const std::uint64_t gen = fp ? fp->agent_generation(sw) : 0;
  net.loop_.schedule_after(lat + req.extra_delay, [&net, id, sw, mod, cb, lat,
                                                   fp, gen] {
    const FlowModResult result = net.switch_sim(sw).apply_flow_mod(id, mod);
    if (cb) {
      const FaultPlane::Delivery rep =
          fp ? fp->apply(sw, FaultDirection::FromSwitch, net.loop_.now())
             : FaultPlane::Delivery{};
      if (rep.drop) return;
      net.loop_.schedule_after(lat + rep.extra_delay, [cb, sw, result, fp,
                                                       gen] {
        // A crashed/restarted control agent voids replies it never sent.
        if (fp && fp->agent_generation(sw) != gen) return;
        cb(sw, result);
      });
    }
  });
}

void Network::ControllerHandle::meter_mod(SwitchId sw, const MeterMod& mod) {
  util::ensure(connected(sw), "controller has no channel to switch");
  ++net_->counters_.meter_mods;
  Network& net = *net_;
  const ControllerId id = id_;
  FaultPlane* fp = net.fault_plane_for(id_);
  const FaultPlane::Delivery req =
      fp ? fp->apply(sw, FaultDirection::ToSwitch, net.loop_.now())
         : FaultPlane::Delivery{};
  if (req.drop) return;
  net.loop_.schedule_after(latency_ + req.extra_delay, [&net, id, sw, mod] {
    net.switch_sim(sw).apply_meter_mod(id, mod);
  });
}

void Network::ControllerHandle::packet_out(const PacketOut& msg) {
  util::ensure(connected(msg.sw), "controller has no channel to switch");
  ++net_->counters_.packet_outs;
  Network& net = *net_;
  net.loop_.schedule_after(latency_, [&net, msg] {
    // Packet-out runs the action list directly; in_port is the virtual
    // controller port (we use the max port number + 1).
    const PortNo ctrl_port(net.switch_sim(msg.sw).num_ports());
    const PipelineOutput out = net.switch_sim(msg.sw).run_actions(
        msg.actions, ctrl_port, msg.packet, /*cookie=*/0);
    net.route_outputs(msg.sw, out, net.config_.max_hops);
  });
}

namespace {
/// Retransmit gap for a duplicated read-only message: the second copy lands
/// this much after the first. Fixed (not drawn) so one apply() call fully
/// determines a message's fate and traces stay replay-stable.
constexpr sim::Time kDuplicateGap = 50 * sim::kMicrosecond;
}  // namespace

void Network::ControllerHandle::request_stats(SwitchId sw, StatsCallback cb) {
  util::ensure(connected(sw), "controller has no channel to switch");
  util::ensure(static_cast<bool>(cb), "stats request needs a callback");
  ++net_->counters_.stats_requests;
  Network& net = *net_;
  const sim::Time lat = latency_;
  FaultPlane* fp = net.fault_plane_for(id_);
  const FaultPlane::Delivery req =
      fp ? fp->apply(sw, FaultDirection::ToSwitch, net.loop_.now())
         : FaultPlane::Delivery{};
  if (req.drop) return;
  const std::uint64_t gen = fp ? fp->agent_generation(sw) : 0;
  const auto serve = [&net, sw, cb, lat, fp, gen] {
    const StatsReply reply = net.switch_sim(sw).stats();
    const FaultPlane::Delivery rep =
        fp ? fp->apply(sw, FaultDirection::FromSwitch, net.loop_.now())
           : FaultPlane::Delivery{};
    if (rep.drop) return;
    const auto deliver = [cb, reply, fp, sw, gen] {
      // Voided if the switch's control agent restarted since the request.
      if (fp && fp->agent_generation(sw) != gen) return;
      cb(reply);
    };
    net.loop_.schedule_after(lat + rep.extra_delay, deliver);
    if (rep.duplicate) {
      net.loop_.schedule_after(lat + rep.extra_delay + kDuplicateGap, deliver);
    }
  };
  net.loop_.schedule_after(lat + req.extra_delay, serve);
  // A duplicated request produces a second, later reply; reconciles are
  // idempotent so only the extra traffic is observable.
  if (req.duplicate) {
    net.loop_.schedule_after(lat + req.extra_delay + kDuplicateGap, serve);
  }
}

void Network::ControllerHandle::subscribe_flow_monitor(SwitchId sw) {
  util::ensure(connected(sw), "controller has no channel to switch");
  Network& net = *net_;
  Controller* controller = net.slot_of(id_).controller;
  const ControllerId id = id_;
  const sim::Time lat = latency_;
  net.switch_sim(sw).subscribe_monitor(
      id_, [&net, controller, id, sw, lat](const FlowUpdate& update) {
        ++net.counters_.flow_update_events;
        FaultPlane* fp = net.fault_plane_for(id);
        const FaultPlane::Delivery d =
            fp ? fp->apply(sw, FaultDirection::FromSwitch, net.loop_.now())
               : FaultPlane::Delivery{};
        if (d.drop) return;
        const auto deliver = [controller, update] {
          controller->on_flow_update(update);
        };
        net.loop_.schedule_after(lat + d.extra_delay, deliver);
        if (d.duplicate) {
          net.loop_.schedule_after(lat + d.extra_delay + kDuplicateGap,
                                   deliver);
        }
      });
}

// --- host side ---

void Network::register_host_receiver(HostId host, HostReceiver receiver) {
  receivers_[host].push_back(std::move(receiver));
}

void Network::host_send(HostId host, PortRef access_point,
                        const Packet& packet) {
  const auto attached = topo_.host_at(access_point);
  util::ensure(attached.has_value() && *attached == host,
               "host is not attached at this access point");
  const sim::Time lat = topo_.host_latency(access_point);
  loop_.schedule_after(lat, [this, access_point, packet] {
    deliver_to_switch(access_point, packet, config_.max_hops);
  });
}

// --- event-driven forwarding ---

void Network::deliver_to_switch(PortRef in, Packet packet,
                                std::size_t hops_left) {
  if (hops_left == 0) {
    ++counters_.loop_drops;
    return;
  }
  loop_.schedule_after(config_.switch_proc_delay, [this, in, packet,
                                                   hops_left] {
    const PipelineOutput out = switch_sim(in.sw).process(
        in.port, packet, loop_.now(), config_.enforce_meters);
    if (out.table_miss) ++counters_.table_miss_drops;
    if (out.metered_drop) ++counters_.metered_drops;
    if (out.ttl_expired) ++counters_.ttl_drops;
    route_outputs(in.sw, out, hops_left - 1);
  });
}

void Network::route_outputs(SwitchId sw, const PipelineOutput& out,
                            std::size_t hops_left) {
  for (const auto& [port, pkt] : out.forwards) {
    const PortRef out_ref{sw, port};
    if (const auto peer = topo_.link_peer(out_ref)) {
      ++counters_.data_hops;
      const sim::Time lat = topo_.link_latency(out_ref);
      const PortRef dest = *peer;
      const Packet copy = pkt;
      loop_.schedule_after(lat, [this, dest, copy, hops_left] {
        deliver_to_switch(dest, copy, hops_left);
      });
    } else if (const auto host = topo_.host_at(out_ref)) {
      ++counters_.host_deliveries;
      const sim::Time lat = topo_.host_latency(out_ref);
      const HostId h = *host;
      const Packet copy = pkt;
      loop_.schedule_after(lat, [this, h, out_ref, copy] {
        const auto it = receivers_.find(h);
        if (it == receivers_.end()) return;
        for (const HostReceiver& receiver : it->second) {
          receiver(out_ref, copy);
        }
      });
    } else {
      ++counters_.dark_deliveries;
    }
  }
  for (const PacketIn& punt : out.punts) dispatch_punt(punt);
}

void Network::dispatch_punt(const PacketIn& punt) {
  for (auto& slot : slots_) {
    const auto it = slot->authenticated.find(punt.sw);
    if (it == slot->authenticated.end() || !it->second) continue;
    ++counters_.packet_ins;
    Controller* controller = slot->controller;
    loop_.schedule_after(slot->latency, [controller, punt] {
      controller->on_packet_in(punt);
    });
  }
}

// --- functional ground truth ---

Trajectory Network::trace(PortRef ingress, const Packet& packet,
                          std::size_t max_hops) {
  util::ensure(topo_.valid_port(ingress), "bad ingress port");
  Trajectory result;

  struct WorkItem {
    PortRef in;
    Packet packet;
    std::vector<TrajectoryHop> path;
  };
  std::deque<WorkItem> queue;
  queue.push_back(WorkItem{ingress, packet, {}});

  // Loop detection: a (port, header, ttl) state repeating means the packet
  // cycles (with dec-TTL, the TTL makes states differ and terminates walks).
  std::set<std::tuple<PortRef, std::string, std::uint8_t>> seen;

  while (!queue.empty()) {
    WorkItem item = std::move(queue.front());
    queue.pop_front();

    if (result.hop_count >= max_hops) {
      result.loop_detected = true;
      break;
    }

    const auto state = std::make_tuple(item.in, item.packet.hdr.to_string(),
                                       item.packet.ttl);
    if (!seen.insert(state).second) {
      result.loop_detected = true;
      continue;
    }

    ++result.hop_count;
    const PipelineOutput out = switch_sim(item.in.sw).process(
        item.in.port, item.packet, loop_.now(), /*enforce_meters=*/false);
    result.ttl_expired |= out.ttl_expired;
    for (const PacketIn& punt : out.punts) result.punts.push_back(punt);

    for (const auto& [port, pkt] : out.forwards) {
      const PortRef out_ref{item.in.sw, port};
      auto path = item.path;
      path.push_back(TrajectoryHop{item.in, out_ref});

      if (const auto peer = topo_.link_peer(out_ref)) {
        queue.push_back(WorkItem{*peer, pkt, std::move(path)});
      } else {
        result.deliveries.push_back(TrajectoryDelivery{
            out_ref, topo_.host_at(out_ref), pkt, std::move(path)});
      }
    }
  }
  return result;
}

Trajectory Network::trace_from_host(HostId host, const Packet& packet,
                                    std::size_t max_hops) {
  const auto ports = topo_.host_ports(host);
  util::ensure(!ports.empty(), "host has no access point");
  return trace(ports.front(), packet, max_hops);
}

}  // namespace rvaas::sdn
