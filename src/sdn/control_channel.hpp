#pragma once
// Controller abstraction and authenticated control channels.
//
// Switches are configured a priori with the certificate (verify key) of each
// controller allowed to connect (paper §III: "Switch to RVaaS controller
// sessions are secured, using encrypted OpenFlow sessions and apriori
// configured switch certificates for authentication"). Channel establishment
// performs a signed challenge handshake; unauthenticated controllers get no
// channel.

#include <functional>

#include "crypto/sign.hpp"
#include "sdn/openflow.hpp"
#include "sdn/types.hpp"

namespace rvaas::sdn {

/// Interface implemented by every controller (provider and RVaaS).
/// Unsolicited switch->controller messages arrive through these callbacks;
/// solicited replies (flow-mod results, stats) arrive through per-call
/// callbacks on the ControllerHandle.
class Controller {
 public:
  virtual ~Controller() = default;

  virtual ControllerId id() const = 0;

  virtual void on_packet_in(const PacketIn& /*msg*/) {}
  virtual void on_flow_update(const FlowUpdate& /*msg*/) {}
};

/// Proof of controller identity used during the channel handshake.
struct ChannelHandshake {
  ControllerId controller{};
  crypto::VerifyKey key;
  crypto::Signature proof;  ///< over (controller, switch, nonce)

  static util::Bytes challenge_bytes(ControllerId controller, SwitchId sw,
                                     std::uint64_t nonce);
};

/// Verifies a handshake against the switch's authorized-key set.
bool verify_handshake(const ChannelHandshake& hs, SwitchId sw,
                      std::uint64_t nonce,
                      const std::vector<crypto::KeyId>& authorized);

using FlowModCallback = std::function<void(SwitchId, const FlowModResult&)>;
using StatsCallback = std::function<void(const StatsReply&)>;

}  // namespace rvaas::sdn
