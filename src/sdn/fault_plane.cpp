#include "sdn/fault_plane.hpp"

#include <algorithm>

namespace rvaas::sdn {

void FaultPlane::set_fault(SwitchId sw, FaultDirection dir,
                           const FaultSpec& spec) {
  faults_[sw].spec[static_cast<std::size_t>(dir)] = spec;
}

void FaultPlane::clear_fault(SwitchId sw) {
  const auto it = faults_.find(sw);
  if (it == faults_.end()) return;
  it->second.spec[0] = FaultSpec{};
  it->second.spec[1] = FaultSpec{};
}

void FaultPlane::partition(SwitchId sw, sim::Time until) {
  auto& f = faults_[sw];
  f.partition_until = std::max(f.partition_until, until);
}

void FaultPlane::crash_agent(SwitchId sw) {
  ++faults_[sw].agent_generation;
  ++stats_.crashes;
}

void FaultPlane::heal_all() {
  // Keep agent generations: in-flight replies captured before the heal must
  // still be voided against the generation that was current at send time.
  for (auto& [sw, f] : faults_) {
    f.spec[0] = FaultSpec{};
    f.spec[1] = FaultSpec{};
    f.partition_until = 0;
  }
}

FaultPlane::Delivery FaultPlane::apply(SwitchId sw, FaultDirection dir,
                                       sim::Time now) {
  Delivery d;
  const auto it = faults_.find(sw);
  if (it == faults_.end()) return d;
  const SwitchFaults& f = it->second;
  const FaultSpec& spec = f.spec[static_cast<std::size_t>(dir)];
  const bool in_partition = now < f.partition_until;
  if (!in_partition && !spec.active()) return d;

  ++stats_.decisions;
  if (in_partition) {
    d.drop = true;
  } else {
    // Draw order is fixed (drop, dup, delay) so traces are comparable.
    if (spec.drop_probability > 0.0) {
      d.drop = rng_.bernoulli(spec.drop_probability);
    }
    if (!d.drop && spec.duplicate_probability > 0.0) {
      d.duplicate = rng_.bernoulli(spec.duplicate_probability);
    }
    if (!d.drop && spec.extra_delay_max > 0) {
      d.extra_delay = rng_.below(spec.extra_delay_max + 1);
    }
  }
  if (d.drop) ++stats_.dropped;
  if (d.duplicate) ++stats_.duplicated;
  if (d.extra_delay > 0) ++stats_.delayed;

  if (trace_enabled_) {
    TraceRecord r;
    r.at = now;
    r.sw = sw;
    r.dir = dir;
    r.outcome = d.drop        ? TraceOutcome::Dropped
                : d.duplicate ? TraceOutcome::Duplicated
                              : TraceOutcome::Delivered;
    r.extra_delay = d.extra_delay;
    trace_.push_back(r);
  }
  return d;
}

std::uint64_t FaultPlane::agent_generation(SwitchId sw) const {
  const auto it = faults_.find(sw);
  return it == faults_.end() ? 0 : it->second.agent_generation;
}

bool FaultPlane::faulted(SwitchId sw, sim::Time now) const {
  const auto it = faults_.find(sw);
  if (it == faults_.end()) return false;
  return now < it->second.partition_until || it->second.spec[0].active() ||
         it->second.spec[1].active();
}

bool FaultPlane::partitioned(SwitchId sw, sim::Time now) const {
  const auto it = faults_.find(sw);
  return it != faults_.end() && now < it->second.partition_until;
}

util::Bytes FaultPlane::trace_bytes() const {
  util::ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(trace_.size()));
  for (const TraceRecord& r : trace_) {
    w.put_u64(r.at);
    w.put_u32(r.sw.value);
    w.put_u8(static_cast<std::uint8_t>(r.dir));
    w.put_u8(static_cast<std::uint8_t>(r.outcome));
    w.put_u64(r.extra_delay);
  }
  return w.take();
}

}  // namespace rvaas::sdn
