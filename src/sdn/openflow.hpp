#pragma once
// OpenFlow-like control-plane messages. Messages are typed in-memory structs
// (the simulation does not serialize the control channel; it *does* model its
// latency and authentication — see control_channel.hpp).

#include <optional>
#include <variant>
#include <vector>

#include "sdn/flow_table.hpp"
#include "sdn/header.hpp"
#include "sdn/meter.hpp"
#include "sdn/types.hpp"

namespace rvaas::sdn {

enum class FlowModCommand { Add, Modify, Delete };

struct FlowMod {
  FlowModCommand command = FlowModCommand::Add;
  // Add:
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;
  Match match;
  ActionList actions;
  std::optional<MeterId> meter;
  // Modify/Delete:
  FlowEntryId target{};
};

struct MeterMod {
  bool remove = false;
  MeterId id{};
  MeterConfig config;
};

enum class PacketInReason { ActionToController, TtlExpired };

/// Switch -> controller: a punted packet.
struct PacketIn {
  SwitchId sw{};
  PortNo in_port{};
  Packet packet;
  PacketInReason reason = PacketInReason::ActionToController;
  std::uint64_t cookie = 0;  ///< cookie of the triggering rule (0 for TTL)
};

/// Controller -> switch: emit a packet at a port (or run an action list).
struct PacketOut {
  SwitchId sw{};
  ActionList actions;  ///< typically a single OutputAction
  Packet packet;
};

enum class FlowUpdateKind { Added, Removed, Modified };

/// Switch -> monitoring controllers: a flow-table change notification
/// (OpenFlow "flow monitor"). This is the backbone of RVaaS's *passive*
/// configuration monitoring.
struct FlowUpdate {
  SwitchId sw{};
  FlowUpdateKind kind = FlowUpdateKind::Added;
  FlowEntry entry;
};

/// Switch -> controller: full configuration dump (answer to a stats
/// request). Backbone of RVaaS's *active* polling.
struct StatsReply {
  SwitchId sw{};
  std::vector<FlowEntry> entries;
  std::vector<std::pair<MeterId, MeterConfig>> meters;
};

enum class ErrorCode {
  NotOwner,       ///< tried to modify/delete another controller's entry
  UnknownEntry,   ///< target id not in the table
  BadPort,        ///< action references a port that does not exist
  Unauthorized,   ///< channel authentication failed
};

struct ErrorMsg {
  SwitchId sw{};
  ErrorCode code{};
};

/// Result of a FlowMod: the assigned entry id, or an error.
struct FlowModResult {
  std::optional<FlowEntryId> id;
  std::optional<ErrorCode> error;

  bool ok() const { return !error.has_value(); }
};

}  // namespace rvaas::sdn
