#pragma once
// OpenFlow-style meters: token-bucket rate limiters referenced by flow
// entries. Used by the fairness / network-neutrality experiments (E10).

#include <cstdint>
#include <map>
#include <optional>

#include "sdn/types.hpp"
#include "sim/event_loop.hpp"

namespace rvaas::sdn {

struct MeterConfig {
  std::uint64_t rate_bps = 0;     ///< sustained rate, bits per second
  std::uint64_t burst_bytes = 0;  ///< bucket depth

  bool operator==(const MeterConfig&) const = default;
};

/// Token bucket evaluated in simulated time.
class TokenBucket {
 public:
  explicit TokenBucket(MeterConfig config)
      : config_(config), tokens_(static_cast<double>(config.burst_bytes)) {}

  /// Consumes `bytes` at time `now`; false means the packet exceeds the rate
  /// (metered drop).
  bool consume(sim::Time now, std::uint64_t bytes);

  const MeterConfig& config() const { return config_; }

 private:
  MeterConfig config_;
  double tokens_;
  sim::Time last_refill_ = 0;
};

/// Per-switch meter configuration table.
class MeterTable {
 public:
  void set(MeterId id, MeterConfig config) { configs_[id] = config; }
  bool erase(MeterId id) { return configs_.erase(id) > 0; }
  std::optional<MeterConfig> get(MeterId id) const;
  const std::map<MeterId, MeterConfig>& all() const { return configs_; }

 private:
  std::map<MeterId, MeterConfig> configs_;
};

}  // namespace rvaas::sdn
